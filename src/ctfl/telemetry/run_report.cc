#include "ctfl/telemetry/run_report.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "ctfl/util/json.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace telemetry {
namespace {

/// JSON has no Inf/NaN; a non-finite value (never produced by healthy
/// runs) degrades to null and parses back as 0.
std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

std::string Hex64(uint64_t v) {
  return StrFormat("0x%016llx", static_cast<unsigned long long>(v));
}

uint64_t ParseHex64(const std::string& s) {
  return static_cast<uint64_t>(std::strtoull(s.c_str(), nullptr, 16));
}

double GetNum(const JsonValue& obj, const char* key, double fallback = 0.0) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->number : fallback;
}

int64_t GetInt(const JsonValue& obj, const char* key, int64_t fallback = 0) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_number()) ? v->AsInt64() : fallback;
}

bool GetBool(const JsonValue& obj, const char* key, bool fallback = false) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->kind == JsonValue::Kind::kBool) ? v->boolean
                                                             : fallback;
}

std::string GetStr(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  return (v != nullptr && v->is_string()) ? v->string : std::string();
}

uint64_t GetHex(const JsonValue& obj, const char* key) {
  return ParseHex64(GetStr(obj, key));
}

}  // namespace

std::string RunReportJson(const RunReport& report) {
  const RunTelemetry& t = report.telemetry;
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema_version\": " << report.schema_version << ",\n";
  out << "  \"run\": {\n";
  out << "    \"fingerprint\": \"" << Hex64(report.run_fingerprint)
      << "\",\n";
  out << "    \"config_digest\": \"" << Hex64(report.config_digest)
      << "\",\n";
  out << "    \"schema_fingerprint\": \"" << Hex64(report.schema_fingerprint)
      << "\",\n";
  out << "    \"failure_plan_fingerprint\": \""
      << Hex64(report.failure_plan_fingerprint) << "\",\n";
  out << "    \"build_type\": \"" << JsonEscape(report.build_type)
      << "\",\n";
  out << "    \"trace_isa\": \"" << JsonEscape(report.trace_isa) << "\",\n";
  out << "    \"federated\": " << (report.federated ? "true" : "false")
      << ",\n";
  out << "    \"num_participants\": " << report.num_participants << ",\n";
  out << "    \"train_records\": " << report.train_records << ",\n";
  out << "    \"test_records\": " << report.test_records << ",\n";
  out << "    \"test_accuracy\": " << Num(report.test_accuracy) << "\n";
  out << "  },\n";
  out << "  \"phases\": {\n";
  out << "    \"train\": {\"wall_seconds\": " << Num(t.train_seconds)
      << ", \"cpu_seconds\": " << Num(t.train_cpu_seconds) << "},\n";
  out << "    \"trace\": {\"wall_seconds\": " << Num(t.trace_seconds)
      << ", \"cpu_seconds\": " << Num(t.trace_cpu_seconds) << "},\n";
  out << "    \"allocate\": {\"wall_seconds\": " << Num(t.allocate_seconds)
      << ", \"cpu_seconds\": " << Num(t.allocate_cpu_seconds) << "}\n";
  out << "  },\n";
  out << "  \"train\": {\n";
  out << "    \"grafting_steps\": " << t.grafting_steps << ",\n";
  out << "    \"train_accuracy\": " << Num(t.train_accuracy) << ",\n";
  out << "    \"clients_dropped\": " << t.clients_dropped << ",\n";
  out << "    \"retries\": " << t.retries << ",\n";
  out << "    \"rounds_degraded\": " << t.rounds_degraded << ",\n";
  out << "    \"rounds\": [";
  for (size_t i = 0; i < t.rounds.size(); ++i) {
    const RoundTelemetry& r = t.rounds[i];
    if (i > 0) out << ",";
    out << "\n      {\"round\": " << r.round
        << ", \"seconds\": " << Num(r.seconds)
        << ", \"cpu_seconds\": " << Num(r.cpu_seconds)
        << ", \"mean_local_loss\": " << Num(r.mean_local_loss)
        << ", \"clients_trained\": " << r.clients_trained
        << ", \"clients_dropped\": " << r.clients_dropped
        << ", \"retries\": " << r.retries
        << ", \"degraded\": " << (r.degraded ? "true" : "false") << "}";
  }
  out << (t.rounds.empty() ? "]" : "\n    ]") << ",\n";
  out << "    \"epochs\": [";
  for (size_t i = 0; i < t.epochs.size(); ++i) {
    const EpochTelemetry& e = t.epochs[i];
    if (i > 0) out << ",";
    out << "\n      {\"epoch\": " << e.epoch
        << ", \"seconds\": " << Num(e.seconds)
        << ", \"loss\": " << Num(e.loss) << "}";
  }
  out << (t.epochs.empty() ? "]" : "\n    ]") << "\n";
  out << "  },\n";
  out << "  \"rules\": {\"total\": " << t.rules_total
      << ", \"kept\": " << t.rules_kept << ", \"pruned\": " << t.rules_pruned
      << "},\n";
  out << "  \"trace\": {\n";
  out << "    \"keys\": " << t.trace_keys << ",\n";
  out << "    \"tau_w_checks\": " << t.tau_w_checks << ",\n";
  out << "    \"related_records\": " << t.related_records << ",\n";
  out << "    \"uncovered_tests\": " << t.uncovered_tests << ",\n";
  out << "    \"records_scanned\": " << t.records_scanned << ",\n";
  out << "    \"blocks_pruned\": " << t.blocks_pruned << ",\n";
  out << "    \"exact_fallbacks\": " << t.exact_fallbacks << "\n";
  out << "  },\n";
  out << "  \"resources\": {\n";
  out << "    \"max_rss_kb\": " << t.max_rss_kb << ",\n";
  out << "    \"voluntary_ctx_switches\": " << t.voluntary_ctx_switches
      << ",\n";
  out << "    \"involuntary_ctx_switches\": " << t.involuntary_ctx_switches
      << "\n";
  out << "  }\n";
  out << "}\n";
  return out.str();
}

Status WriteRunReport(const RunReport& report, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << RunReportJson(report);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<RunReport> ParseRunReportJson(const std::string& json) {
  CTFL_ASSIGN_OR_RETURN(JsonValue root, ParseJson(json));
  if (!root.is_object()) {
    return Status::InvalidArgument("run report: top level is not an object");
  }
  RunReport report;
  report.schema_version =
      static_cast<int>(GetInt(root, "schema_version", 1));

  if (const JsonValue* run = root.Find("run"); run != nullptr) {
    report.run_fingerprint = GetHex(*run, "fingerprint");
    report.config_digest = GetHex(*run, "config_digest");
    report.schema_fingerprint = GetHex(*run, "schema_fingerprint");
    report.failure_plan_fingerprint =
        GetHex(*run, "failure_plan_fingerprint");
    report.build_type = GetStr(*run, "build_type");
    report.trace_isa = GetStr(*run, "trace_isa");
    report.federated = GetBool(*run, "federated", true);
    report.num_participants =
        static_cast<int>(GetInt(*run, "num_participants"));
    report.train_records = GetInt(*run, "train_records");
    report.test_records = GetInt(*run, "test_records");
    report.test_accuracy = GetNum(*run, "test_accuracy");
  }

  RunTelemetry& t = report.telemetry;
  if (const JsonValue* phases = root.Find("phases"); phases != nullptr) {
    if (const JsonValue* p = phases->Find("train"); p != nullptr) {
      t.train_seconds = GetNum(*p, "wall_seconds");
      t.train_cpu_seconds = GetNum(*p, "cpu_seconds");
    }
    if (const JsonValue* p = phases->Find("trace"); p != nullptr) {
      t.trace_seconds = GetNum(*p, "wall_seconds");
      t.trace_cpu_seconds = GetNum(*p, "cpu_seconds");
    }
    if (const JsonValue* p = phases->Find("allocate"); p != nullptr) {
      t.allocate_seconds = GetNum(*p, "wall_seconds");
      t.allocate_cpu_seconds = GetNum(*p, "cpu_seconds");
    }
  }
  if (const JsonValue* train = root.Find("train"); train != nullptr) {
    t.grafting_steps = GetInt(*train, "grafting_steps");
    t.train_accuracy = GetNum(*train, "train_accuracy");
    t.clients_dropped = GetInt(*train, "clients_dropped");
    t.retries = GetInt(*train, "retries");
    t.rounds_degraded =
        static_cast<int>(GetInt(*train, "rounds_degraded"));
    if (const JsonValue* rounds = train->Find("rounds");
        rounds != nullptr && rounds->is_array()) {
      for (const JsonValue& r : rounds->array) {
        RoundTelemetry rt;
        rt.round = static_cast<int>(GetInt(r, "round"));
        rt.seconds = GetNum(r, "seconds");
        rt.cpu_seconds = GetNum(r, "cpu_seconds");
        rt.mean_local_loss = GetNum(r, "mean_local_loss");
        rt.clients_trained = static_cast<int>(GetInt(r, "clients_trained"));
        rt.clients_dropped = static_cast<int>(GetInt(r, "clients_dropped"));
        rt.retries = static_cast<int>(GetInt(r, "retries"));
        rt.degraded = GetBool(r, "degraded");
        t.rounds.push_back(rt);
      }
    }
    if (const JsonValue* epochs = train->Find("epochs");
        epochs != nullptr && epochs->is_array()) {
      for (const JsonValue& e : epochs->array) {
        EpochTelemetry et;
        et.epoch = static_cast<int>(GetInt(e, "epoch"));
        et.seconds = GetNum(e, "seconds");
        et.loss = GetNum(e, "loss");
        t.epochs.push_back(et);
      }
    }
  }
  if (const JsonValue* rules = root.Find("rules"); rules != nullptr) {
    t.rules_total = static_cast<int>(GetInt(*rules, "total"));
    t.rules_kept = static_cast<int>(GetInt(*rules, "kept"));
    t.rules_pruned = static_cast<int>(GetInt(*rules, "pruned"));
  }
  if (const JsonValue* trace = root.Find("trace"); trace != nullptr) {
    t.trace_keys = GetInt(*trace, "keys");
    t.tau_w_checks = GetInt(*trace, "tau_w_checks");
    t.related_records = GetInt(*trace, "related_records");
    t.uncovered_tests = GetInt(*trace, "uncovered_tests");
    t.records_scanned = GetInt(*trace, "records_scanned");
    t.blocks_pruned = GetInt(*trace, "blocks_pruned");
    t.exact_fallbacks = GetInt(*trace, "exact_fallbacks");
  }
  if (const JsonValue* res = root.Find("resources"); res != nullptr) {
    t.max_rss_kb = GetInt(*res, "max_rss_kb");
    t.voluntary_ctx_switches = GetInt(*res, "voluntary_ctx_switches");
    t.involuntary_ctx_switches = GetInt(*res, "involuntary_ctx_switches");
  }
  return report;
}

Result<RunReport> ReadRunReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseRunReportJson(buffer.str());
}

}  // namespace telemetry
}  // namespace ctfl
