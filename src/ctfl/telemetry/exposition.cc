#include "ctfl/telemetry/exposition.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "ctfl/util/json.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace telemetry {
namespace {

/// Prometheus sample values: integers stay integral, doubles use enough
/// digits to round-trip, non-finite values use the official spellings.
std::string SampleValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.17g", v);
}

/// JSON number token for a double; JSON has no Inf/NaN literals, so
/// non-finite digests (e.g. a quantile landing in the overflow bucket)
/// are written as null.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

/// `le` label values: match Prometheus convention of shortest unambiguous
/// rendering; +Inf closes every histogram.
std::string LeLabel(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return StrFormat("%g", bound);
}

void AppendHistogram(const std::string& name,
                     const MetricsRegistry::Snapshot::HistogramData& data,
                     std::ostringstream& out) {
  const std::string metric = PrometheusMetricName(name);
  out << "# TYPE " << metric << " histogram\n";
  int64_t cumulative = 0;
  for (size_t i = 0; i < data.bucket_counts.size(); ++i) {
    cumulative += data.bucket_counts[i];
    const double bound = i < data.bounds.size()
                             ? data.bounds[i]
                             : std::numeric_limits<double>::infinity();
    out << metric << "_bucket{le=\"" << LeLabel(bound) << "\"} "
        << cumulative << "\n";
  }
  out << metric << "_sum " << SampleValue(data.sum) << "\n";
  out << metric << "_count " << data.count << "\n";
  // Approximate quantiles ride along as summary-style samples so a
  // scraper needs no histogram_quantile() to see tail latency.
  const std::pair<const char*, double> quantiles[] = {
      {"0.5", data.p50}, {"0.9", data.p90}, {"0.99", data.p99}};
  for (const auto& [q, v] : quantiles) {
    out << metric << "{quantile=\"" << q << "\"} " << SampleValue(v)
        << "\n";
  }
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':' ||
                       (i > 0 && c >= '0' && c <= '9');
    out.push_back(valid ? c : '_');
  }
  if (out.empty()) out = "_";
  return out;
}

std::string PrometheusText(const MetricsRegistry::Snapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = PrometheusMetricName(name);
    out << "# TYPE " << metric << " counter\n";
    out << metric << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = PrometheusMetricName(name);
    out << "# TYPE " << metric << " gauge\n";
    out << metric << " " << SampleValue(value) << "\n";
  }
  for (const auto& [name, data] : snapshot.histograms) {
    AppendHistogram(name, data, out);
  }
  return out.str();
}

std::string PrometheusText() {
  return PrometheusText(MetricsRegistry::Global().TakeSnapshot());
}

MetricsSnapshotWriter::MetricsSnapshotWriter(const std::string& path)
    : out_(path, std::ios::trunc), path_(path) {
  if (!out_) status_ = Status::IoError("cannot open " + path);
}

Status MetricsSnapshotWriter::WriteRound(const RoundTelemetry& round) {
  return WriteLine(StrFormat("round_%d", round.round), &round);
}

Status MetricsSnapshotWriter::WriteLabeled(const std::string& label) {
  return WriteLine(label, nullptr);
}

Status MetricsSnapshotWriter::WriteLine(const std::string& label,
                                        const RoundTelemetry* round) {
  if (!status_.ok()) return status_;
  const MetricsRegistry::Snapshot snapshot =
      MetricsRegistry::Global().TakeSnapshot();
  std::ostringstream line;
  line << "{\"seq\":" << sequence_ << ",\"label\":\"" << JsonEscape(label)
       << "\"";
  if (round != nullptr) {
    line << ",\"round\":{"
         << "\"round\":" << round->round
         << ",\"seconds\":" << JsonNumber(round->seconds)
         << ",\"cpu_seconds\":" << JsonNumber(round->cpu_seconds)
         << ",\"mean_local_loss\":"
         << JsonNumber(round->mean_local_loss)
         << ",\"clients_trained\":" << round->clients_trained
         << ",\"clients_dropped\":" << round->clients_dropped
         << ",\"retries\":" << round->retries
         << ",\"degraded\":" << (round->degraded ? "true" : "false") << "}";
  }
  line << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) line << ",";
    first = false;
    line << "\"" << JsonEscape(name) << "\":" << value;
  }
  line << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) line << ",";
    first = false;
    line << "\"" << JsonEscape(name)
         << "\":" << JsonNumber(value);
  }
  line << "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!first) line << ",";
    first = false;
    line << "\"" << JsonEscape(name) << "\":{\"count\":" << data.count
         << ",\"sum\":" << JsonNumber(data.sum)
         << ",\"p50\":" << JsonNumber(data.p50)
         << ",\"p90\":" << JsonNumber(data.p90)
         << ",\"p99\":" << JsonNumber(data.p99) << "}";
  }
  line << "}}";
  out_ << line.str() << "\n";
  out_.flush();
  if (!out_) {
    status_ = Status::IoError("write failed: " + path_);
    return status_;
  }
  ++sequence_;
  return Status::OK();
}

}  // namespace telemetry
}  // namespace ctfl
