#include "ctfl/telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "ctfl/util/cpu_time.h"
#include "ctfl/util/json.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace telemetry {
namespace {

std::atomic<bool> g_tracing_enabled{false};

/// Bounded event buffer. Appends take a mutex — spans end at phase
/// granularity (rounds, epochs, passes), not per-record, so contention is
/// negligible; the *disabled* path never reaches here.
class TraceBuffer {
 public:
  static TraceBuffer& Global() {
    static TraceBuffer* buffer = new TraceBuffer();
    return *buffer;
  }

  void Append(const TraceEvent& event) {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    dropped_ = 0;
  }

  void SetCapacity(size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    if (events_.size() > capacity_) events_.resize(capacity_);
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  size_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  std::vector<TraceEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t capacity_ = 65536;
  size_t dropped_ = 0;
};

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

int NextThreadId() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

thread_local int t_trace_tid = -1;
thread_local int t_span_depth = 0;

}  // namespace

void SetTracingEnabled(bool enabled) {
  if (enabled) TraceEpoch();  // pin the epoch before the first span
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

int64_t TraceClockMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

int CurrentTraceThreadId() {
  if (t_trace_tid < 0) t_trace_tid = NextThreadId();
  return t_trace_tid;
}

void ClearTrace() { TraceBuffer::Global().Clear(); }

void SetTraceCapacity(size_t capacity) {
  TraceBuffer::Global().SetCapacity(capacity);
}

size_t TraceEventCount() { return TraceBuffer::Global().size(); }

size_t DroppedSpanCount() { return TraceBuffer::Global().dropped(); }

std::vector<TraceEvent> TraceEvents() {
  return TraceBuffer::Global().Snapshot();
}

std::string ChromeTraceJson() {
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  // chrome://tracing renders nested "X" events best when parents precede
  // children on each thread timeline; sort by (tid, start, -duration).
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.duration_us > b.duration_us;
            });
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << JsonEscape(event.name)
        << "\",\"cat\":\"ctfl\",\"ph\":\"X\",\"ts\":" << event.start_us
        << ",\"dur\":" << event.duration_us
        << ",\"pid\":1,\"tid\":" << event.tid
        << ",\"args\":{\"depth\":" << event.depth
        << ",\"cpu_us\":" << event.cpu_us << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << ChromeTraceJson() << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string TraceSummaryTable() {
  struct Aggregate {
    int64_t count = 0;
    int64_t total_us = 0;
    int64_t cpu_us = 0;
    int64_t min_us = INT64_MAX;
    int64_t max_us = 0;
  };
  std::map<std::string, Aggregate> by_name;
  for (const TraceEvent& event : TraceBuffer::Global().Snapshot()) {
    Aggregate& agg = by_name[event.name];
    ++agg.count;
    agg.total_us += event.duration_us;
    agg.cpu_us += event.cpu_us;
    agg.min_us = std::min(agg.min_us, event.duration_us);
    agg.max_us = std::max(agg.max_us, event.duration_us);
  }
  std::vector<std::pair<std::string, Aggregate>> rows(by_name.begin(),
                                                      by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::ostringstream out;
  out << StrFormat("%-32s %8s %12s %12s %12s %10s %10s\n", "span", "count",
                   "total_ms", "cpu_ms", "mean_ms", "min_ms", "max_ms");
  for (const auto& [name, agg] : rows) {
    out << StrFormat("%-32s %8lld %12.3f %12.3f %12.3f %10.3f %10.3f\n",
                     name.c_str(), static_cast<long long>(agg.count),
                     agg.total_us / 1e3, agg.cpu_us / 1e3,
                     agg.total_us / 1e3 / static_cast<double>(agg.count),
                     agg.min_us / 1e3, agg.max_us / 1e3);
  }
  const size_t dropped = DroppedSpanCount();
  if (dropped > 0) {
    out << StrFormat("(%zu spans dropped: trace buffer full)\n", dropped);
  }
  return out.str();
}

Span::Span(const char* name) : name_(name) {
  if (!TracingEnabled()) return;  // disabled fast path: one load + branch
  active_ = true;
  ++t_span_depth;
  // CPU clock first: its very first call in a process can be slow
  // (symbol resolution / non-vDSO syscall), and sampling it before the
  // wall clocks keeps that cost out of the [ts, ts+dur] window so child
  // spans still nest inside their parent.
  start_cpu_us_ = ThreadCpuMicros();
  start_us_ = TraceClockMicros();
  watch_.Restart();
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  TraceEvent event;
  event.name = name_;
  event.start_us = start_us_;
  // End() can run on a different thread than the constructor only for
  // heap-escaped spans, which the RAII contract forbids; the CPU delta is
  // the owning thread's. CPU before wall, mirroring the constructor, so
  // the CPU window never extends past the wall window.
  event.cpu_us = ThreadCpuMicros() - start_cpu_us_;
  event.duration_us = watch_.ElapsedMicros();
  event.tid = CurrentTraceThreadId();
  event.depth = --t_span_depth;
  TraceBuffer::Global().Append(event);
}

Span::~Span() { End(); }

}  // namespace telemetry
}  // namespace ctfl
