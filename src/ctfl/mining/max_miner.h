#ifndef CTFL_MINING_MAX_MINER_H_
#define CTFL_MINING_MAX_MINER_H_

#include <cstdint>

#include "ctfl/mining/itemset.h"

namespace ctfl {

/// Maximal frequent itemsets in the style of Bayardo's Max-Miner
/// (SIGMOD'98), the algorithm the paper cites for its tracing
/// acceleration: depth-first search over candidate groups (head, tail)
/// with the two Max-Miner prunings —
///   (1) infrequent tail items are dropped before expansion, and
///   (2) the "look-ahead": if head ∪ tail is itself frequent, the whole
///       subtree collapses to that single maximal set.
/// Items are expanded in increasing support order (Max-Miner's reordering
/// heuristic) to make look-ahead fire early.
///
/// Dense databases can have combinatorially many maximal frequent
/// itemsets; `max_expansions` bounds the number of search-tree nodes and
/// `max_itemsets` the number of results. When either budget is hit the
/// search stops early — every returned itemset is still frequent and
/// maximal among the returned set, which is all the grouping prefilter
/// needs (it never requires completeness for correctness).
std::vector<Itemset> MaxMinerMaximal(const VerticalDb& db,
                                     size_t min_support,
                                     size_t max_expansions = SIZE_MAX,
                                     size_t max_itemsets = SIZE_MAX);

}  // namespace ctfl

#endif  // CTFL_MINING_MAX_MINER_H_
