#include "ctfl/mining/test_grouping.h"

#include <algorithm>

#include "ctfl/mining/max_miner.h"
#include "ctfl/util/logging.h"

namespace ctfl {
namespace {

double WeightedSize(const Itemset& items,
                    const std::vector<double>& weights) {
  double total = 0.0;
  for (int item : items) total += weights[item];
  return total;
}

double WeightedSize(const Bitset& bits, const std::vector<double>& weights) {
  double total = 0.0;
  for (size_t item : bits.SetBits()) total += weights[item];
  return total;
}

bool ItemsetInActivation(const Itemset& items, const Bitset& activation) {
  for (int item : items) {
    if (!activation.Test(item)) return false;
  }
  return true;
}

}  // namespace

std::vector<TestGroup> GroupActivations(
    const std::vector<Bitset>& activations,
    const std::vector<double>& item_weights, double tau_w,
    const GroupingConfig& config) {
  std::vector<TestGroup> groups;
  if (activations.empty()) return groups;
  const size_t num_items = activations[0].size();
  CTFL_CHECK(item_weights.size() == num_items);

  std::vector<Itemset> maximal;
  if (activations.size() >= config.min_instances) {
    const VerticalDb db(activations, num_items);
    const size_t min_support = std::max<size_t>(
        1, static_cast<size_t>(config.min_support_fraction *
                               activations.size()));
    // Mask out near-universal items before mining: they cannot shrink a
    // candidate set (every training vector passes them) but they make the
    // maximal-frequent lattice explode on dense activation data.
    const size_t max_item_support = static_cast<size_t>(
        config.max_item_support_fraction * activations.size());
    std::vector<bool> dense(num_items, false);
    bool any_dense = false;
    for (size_t item = 0; item < num_items; ++item) {
      if (db.Support(static_cast<int>(item)) > max_item_support) {
        dense[item] = true;
        any_dense = true;
      }
    }
    if (any_dense) {
      std::vector<Bitset> filtered = activations;
      for (Bitset& row : filtered) {
        for (size_t item = 0; item < num_items; ++item) {
          if (dense[item] && row.Test(item)) row.Clear(item);
        }
      }
      const VerticalDb sparse_db(filtered, num_items);
      maximal = MaxMinerMaximal(sparse_db, min_support,
                                config.max_expansions, config.max_itemsets);
    } else {
      maximal = MaxMinerMaximal(db, min_support, config.max_expansions,
                                config.max_itemsets);
    }
    // Drop the empty itemset if present (it groups nothing usefully).
    maximal.erase(std::remove_if(maximal.begin(), maximal.end(),
                                 [](const Itemset& s) { return s.empty(); }),
                  maximal.end());
  }

  // Assign each activation to the heaviest eligible maximal itemset.
  std::vector<int> assignment(activations.size(), -1);
  std::vector<double> best_weight(activations.size(), -1.0);
  for (size_t g = 0; g < maximal.size(); ++g) {
    const double w = WeightedSize(maximal[g], item_weights);
    for (size_t t = 0; t < activations.size(); ++t) {
      if (w > best_weight[t] &&
          ItemsetInActivation(maximal[g], activations[t])) {
        best_weight[t] = w;
        assignment[t] = static_cast<int>(g);
      }
    }
  }

  std::vector<TestGroup> by_itemset(maximal.size());
  for (size_t g = 0; g < maximal.size(); ++g) {
    by_itemset[g].frequent_subset = maximal[g];
  }
  for (size_t t = 0; t < activations.size(); ++t) {
    if (assignment[t] >= 0) {
      by_itemset[assignment[t]].members.push_back(t);
    } else {
      // Singleton group: F is the activation itself.
      TestGroup solo;
      solo.frequent_subset.reserve(activations[t].Count());
      for (size_t item : activations[t].SetBits()) {
        solo.frequent_subset.push_back(static_cast<int>(item));
      }
      solo.members.push_back(t);
      groups.push_back(std::move(solo));
    }
  }
  for (TestGroup& group : by_itemset) {
    if (!group.members.empty()) groups.push_back(std::move(group));
  }

  // Finalize thresholds.
  for (TestGroup& group : groups) {
    const double wf = WeightedSize(group.frequent_subset, item_weights);
    double max_act = 0.0;
    for (size_t t : group.members) {
      max_act = std::max(max_act, WeightedSize(activations[t], item_weights));
    }
    group.theta = wf - (1.0 - tau_w) * max_act;
  }
  return groups;
}

}  // namespace ctfl
