#include "ctfl/mining/apriori.h"

#include <algorithm>

namespace ctfl {

std::vector<Itemset> AprioriFrequent(const VerticalDb& db,
                                     size_t min_support, int max_len) {
  std::vector<Itemset> result;
  // Level 1.
  std::vector<Itemset> level;
  for (int item = 0; item < static_cast<int>(db.num_items()); ++item) {
    if (db.Support(item) >= min_support) level.push_back({item});
  }
  int length = 1;
  while (!level.empty() && (max_len < 0 || length <= max_len)) {
    result.insert(result.end(), level.begin(), level.end());
    if (max_len >= 0 && length == max_len) break;

    // Candidate generation: join sets sharing the first k-1 items.
    std::vector<Itemset> next;
    for (size_t a = 0; a < level.size(); ++a) {
      for (size_t b = a + 1; b < level.size(); ++b) {
        const Itemset& x = level[a];
        const Itemset& y = level[b];
        if (!std::equal(x.begin(), x.end() - 1, y.begin())) continue;
        Itemset candidate = x;
        candidate.push_back(y.back());
        if (candidate[candidate.size() - 2] > candidate.back()) {
          std::swap(candidate[candidate.size() - 2], candidate.back());
        }
        // Downward closure: all k-1 subsets must be frequent. The join
        // already guarantees two of them; verify the rest by support
        // counting directly (cheap with tidsets).
        if (db.Support(candidate) >= min_support) {
          next.push_back(std::move(candidate));
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    level = std::move(next);
    ++length;
  }
  return result;
}

std::vector<Itemset> MaximalOnly(std::vector<Itemset> frequent) {
  // Sort by descending size so any superset precedes its subsets.
  std::sort(frequent.begin(), frequent.end(),
            [](const Itemset& a, const Itemset& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  std::vector<Itemset> maximal;
  for (const Itemset& candidate : frequent) {
    bool subsumed = false;
    for (const Itemset& kept : maximal) {
      if (IsSubsetOf(candidate, kept)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) maximal.push_back(candidate);
  }
  return maximal;
}

}  // namespace ctfl
