#include "ctfl/mining/itemset.h"

#include <algorithm>

#include "ctfl/util/logging.h"

namespace ctfl {

VerticalDb::VerticalDb(const std::vector<Bitset>& transactions,
                       size_t num_items)
    : num_transactions_(transactions.size()) {
  tidsets_.assign(num_items, Bitset(transactions.size()));
  for (size_t t = 0; t < transactions.size(); ++t) {
    CTFL_CHECK(transactions[t].size() == num_items);
    for (size_t item : transactions[t].SetBits()) {
      tidsets_[item].Set(t);
    }
  }
}

size_t VerticalDb::Support(const Itemset& itemset) const {
  if (itemset.empty()) return num_transactions_;
  return Tidset(itemset).Count();
}

Bitset VerticalDb::Tidset(const Itemset& itemset) const {
  if (itemset.empty()) {
    Bitset all(num_transactions_);
    for (size_t t = 0; t < num_transactions_; ++t) all.Set(t);
    return all;
  }
  Bitset tids = tidsets_[itemset[0]];
  for (size_t k = 1; k < itemset.size(); ++k) tids &= tidsets_[itemset[k]];
  return tids;
}

bool IsSubsetOf(const Itemset& subset, const Itemset& superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

}  // namespace ctfl
