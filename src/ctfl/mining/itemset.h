#ifndef CTFL_MINING_ITEMSET_H_
#define CTFL_MINING_ITEMSET_H_

#include <vector>

#include "ctfl/util/bitset.h"

namespace ctfl {

/// An itemset: sorted ascending item ids. Items here are rule coordinates;
/// transactions are rule-activation vectors.
using Itemset = std::vector<int>;

/// Vertical (tidset) representation of a transaction database: for each
/// item, the bitset of transactions containing it. Support counting of an
/// itemset reduces to intersecting tidsets — the layout Max-Miner-style
/// miners want.
class VerticalDb {
 public:
  /// `transactions[t]` is the item bitset of transaction t; all must share
  /// the same universe size.
  VerticalDb(const std::vector<Bitset>& transactions, size_t num_items);

  size_t num_items() const { return tidsets_.size(); }
  size_t num_transactions() const { return num_transactions_; }

  const Bitset& tidset(int item) const { return tidsets_[item]; }

  /// Support (transaction count) of a single item.
  size_t Support(int item) const { return tidsets_[item].Count(); }

  /// Support of an itemset (intersection of tidsets).
  size_t Support(const Itemset& itemset) const;

  /// Tidset of an itemset.
  Bitset Tidset(const Itemset& itemset) const;

 private:
  size_t num_transactions_;
  std::vector<Bitset> tidsets_;
};

/// True if `subset` ⊆ `superset` (both sorted ascending).
bool IsSubsetOf(const Itemset& subset, const Itemset& superset);

}  // namespace ctfl

#endif  // CTFL_MINING_ITEMSET_H_
