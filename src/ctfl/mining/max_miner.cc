#include "ctfl/mining/max_miner.h"

#include <algorithm>

#include "ctfl/mining/apriori.h"

namespace ctfl {
namespace {

struct MinerState {
  const VerticalDb* db;
  size_t min_support;
  size_t expansions_left;
  size_t itemsets_left;
  std::vector<Itemset> found;

  bool Exhausted() const {
    return expansions_left == 0 || itemsets_left == 0;
  }
};

// Records `candidate` unless an already-found maximal set subsumes it.
void Record(MinerState& state, Itemset candidate) {
  for (const Itemset& kept : state.found) {
    if (IsSubsetOf(candidate, kept)) return;
  }
  state.found.push_back(std::move(candidate));
  if (state.itemsets_left > 0) --state.itemsets_left;
}

// head: current itemset; head_tids: its tidset; tail: candidate extension
// items.
void Expand(MinerState& state, const Itemset& head, const Bitset& head_tids,
            const std::vector<int>& tail) {
  if (state.Exhausted()) return;
  --state.expansions_left;

  // Prune tail items that are infrequent relative to head.
  struct TailItem {
    int item;
    size_t support;
  };
  std::vector<TailItem> viable;
  for (int item : tail) {
    const size_t support = head_tids.AndCount(state.db->tidset(item));
    if (support >= state.min_support) viable.push_back({item, support});
  }
  if (viable.empty()) {
    if (!head.empty()) Record(state, head);
    return;
  }

  // Look-ahead: if head ∪ viable-tail is frequent, it is the unique
  // maximal set below this node.
  Bitset all_tids = head_tids;
  for (const TailItem& ti : viable) all_tids &= state.db->tidset(ti.item);
  if (all_tids.Count() >= state.min_support) {
    Itemset maximal = head;
    for (const TailItem& ti : viable) maximal.push_back(ti.item);
    std::sort(maximal.begin(), maximal.end());
    Record(state, maximal);
    return;
  }

  // Expand in increasing support order; items already expanded move out of
  // the tail of later siblings.
  std::sort(viable.begin(), viable.end(),
            [](const TailItem& a, const TailItem& b) {
              if (a.support != b.support) return a.support < b.support;
              return a.item < b.item;
            });
  for (size_t k = 0; k < viable.size(); ++k) {
    if (state.Exhausted()) return;
    Itemset new_head = head;
    new_head.push_back(viable[k].item);
    std::sort(new_head.begin(), new_head.end());
    Bitset new_tids = head_tids;
    new_tids &= state.db->tidset(viable[k].item);
    std::vector<int> new_tail;
    for (size_t m = k + 1; m < viable.size(); ++m) {
      new_tail.push_back(viable[m].item);
    }
    Expand(state, new_head, new_tids, new_tail);
  }
}

}  // namespace

std::vector<Itemset> MaxMinerMaximal(const VerticalDb& db,
                                     size_t min_support,
                                     size_t max_expansions,
                                     size_t max_itemsets) {
  MinerState state{&db, std::max<size_t>(min_support, 1), max_expansions,
                   max_itemsets,
                   {}};
  std::vector<int> items;
  for (int item = 0; item < static_cast<int>(db.num_items()); ++item) {
    if (db.Support(item) >= state.min_support) items.push_back(item);
  }
  Bitset all(db.num_transactions());
  for (size_t t = 0; t < db.num_transactions(); ++t) all.Set(t);
  Expand(state, {}, all, items);
  // DFS order does not guarantee supersets are found before subsets in
  // every branch interleaving; a final maximality sweep settles it.
  return MaximalOnly(std::move(state.found));
}

}  // namespace ctfl
