#ifndef CTFL_MINING_APRIORI_H_
#define CTFL_MINING_APRIORI_H_

#include "ctfl/mining/itemset.h"

namespace ctfl {

/// Classic level-wise Apriori: all itemsets with support >= min_support
/// (a count). `max_len` caps the itemset length (-1 = unbounded). Used as
/// the reference miner that Max-Miner is validated against in tests.
std::vector<Itemset> AprioriFrequent(const VerticalDb& db,
                                     size_t min_support, int max_len = -1);

/// Filters a frequent collection down to its maximal members (no frequent
/// proper superset).
std::vector<Itemset> MaximalOnly(std::vector<Itemset> frequent);

}  // namespace ctfl

#endif  // CTFL_MINING_APRIORI_H_
