#ifndef CTFL_MINING_TEST_GROUPING_H_
#define CTFL_MINING_TEST_GROUPING_H_

#include <vector>

#include "ctfl/mining/itemset.h"

namespace ctfl {

/// A group of test instances sharing a frequent subset F of activated
/// rules (paper §III-C "Efficient Computation of CTFL"): tracing first
/// prefilters training instances against F, then runs the exact per-test
/// check only on the survivors.
struct TestGroup {
  /// The shared frequent rule subset F, as sorted rule coordinates.
  Itemset frequent_subset;
  /// Members: indices into the activation list handed to the grouper.
  std::vector<size_t> members;
  /// Sound prefilter threshold: a training activation vector a can only be
  /// related (overlap ratio >= tau_w) to a member of this group if
  /// w(a ∩ F) >= theta. Derived as
  ///   theta = w(F) - (1 - tau_w) * max_{t in group} w(act_t),
  /// which lower-bounds w(a ∩ F) for any related pair. May be <= 0, in
  /// which case the prefilter passes everything (still correct).
  double theta = 0.0;
};

struct GroupingConfig {
  /// Fraction of test instances an itemset must cover to count as
  /// frequent.
  double min_support_fraction = 0.05;
  /// Below this many activations, grouping overhead is not worth it and
  /// every instance becomes a singleton group.
  size_t min_instances = 32;
  /// Items activated by more than this fraction of instances are excluded
  /// from mining: near-universal rules blow up the maximal-itemset lattice
  /// while adding no prefiltering power (every candidate passes them).
  double max_item_support_fraction = 0.9;
  /// Budgets handed to Max-Miner (dense databases can have exponentially
  /// many maximal itemsets; truncation keeps grouping cheap and is sound).
  size_t max_expansions = 20000;
  size_t max_itemsets = 128;
};

/// Partitions activation vectors into groups by maximal frequent itemsets
/// (Max-Miner): each vector joins the eligible itemset (F ⊆ activation)
/// with the largest weighted size; vectors covered by no frequent itemset
/// become singleton groups with F = their own activation. Weighted sizes
/// use `item_weights` (rule importance weights), matching Eq. 4's weighted
/// overlap.
std::vector<TestGroup> GroupActivations(
    const std::vector<Bitset>& activations,
    const std::vector<double>& item_weights, double tau_w,
    const GroupingConfig& config);

}  // namespace ctfl

#endif  // CTFL_MINING_TEST_GROUPING_H_
