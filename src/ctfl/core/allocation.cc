#include "ctfl/core/allocation.h"

#include "ctfl/util/logging.h"

namespace ctfl {

std::vector<double> MicroAllocation(const TraceResult& trace,
                                    bool on_correct) {
  const int n = trace.num_participants;
  std::vector<double> scores(n, 0.0);
  if (trace.tests.empty()) return scores;
  for (const TestTrace& t : trace.tests) {
    if (t.correct != on_correct) continue;
    if (t.total_related == 0) continue;
    for (int p = 0; p < n; ++p) {
      scores[p] += static_cast<double>(t.related_count[p]) /
                   static_cast<double>(t.total_related);
    }
  }
  for (double& s : scores) s /= trace.tests.size();
  return scores;
}

std::vector<double> MacroAllocation(const TraceResult& trace, int delta,
                                    bool on_correct) {
  return MacroAllocationSweep(trace, {delta}, on_correct)[0];
}

std::vector<std::vector<double>> MacroAllocationSweep(
    const TraceResult& trace, const std::vector<int>& deltas,
    bool on_correct) {
  const int n = trace.num_participants;
  std::vector<std::vector<double>> sweep(deltas.size(),
                                         std::vector<double>(n, 0.0));
  if (trace.tests.empty()) return sweep;
  for (const TestTrace& t : trace.tests) {
    if (t.correct != on_correct) continue;
    for (size_t d = 0; d < deltas.size(); ++d) {
      int qualifying = 0;
      for (int p = 0; p < n; ++p) {
        if (t.related_count[p] >= deltas[d]) ++qualifying;
      }
      if (qualifying == 0) continue;
      const double share = 1.0 / qualifying;
      for (int p = 0; p < n; ++p) {
        if (t.related_count[p] >= deltas[d]) sweep[d][p] += share;
      }
    }
  }
  for (auto& scores : sweep) {
    for (double& s : scores) s /= trace.tests.size();
  }
  return sweep;
}

std::vector<double> WeightedMicroAllocation(
    const TraceResult& trace, const std::vector<double>& test_weights,
    bool on_correct) {
  CTFL_CHECK(test_weights.size() == trace.tests.size());
  const int n = trace.num_participants;
  std::vector<double> scores(n, 0.0);
  for (size_t t = 0; t < trace.tests.size(); ++t) {
    const TestTrace& trace_t = trace.tests[t];
    if (trace_t.correct != on_correct || trace_t.total_related == 0) {
      continue;
    }
    for (int p = 0; p < n; ++p) {
      scores[p] += test_weights[t] *
                   static_cast<double>(trace_t.related_count[p]) /
                   static_cast<double>(trace_t.total_related);
    }
  }
  return scores;
}

std::vector<double> WeightedMacroAllocation(
    const TraceResult& trace, const std::vector<double>& test_weights,
    int delta, bool on_correct) {
  CTFL_CHECK(test_weights.size() == trace.tests.size());
  const int n = trace.num_participants;
  std::vector<double> scores(n, 0.0);
  for (size_t t = 0; t < trace.tests.size(); ++t) {
    const TestTrace& trace_t = trace.tests[t];
    if (trace_t.correct != on_correct) continue;
    int qualifying = 0;
    for (int p = 0; p < n; ++p) {
      if (trace_t.related_count[p] >= delta) ++qualifying;
    }
    if (qualifying == 0) continue;
    const double share = test_weights[t] / qualifying;
    for (int p = 0; p < n; ++p) {
      if (trace_t.related_count[p] >= delta) scores[p] += share;
    }
  }
  return scores;
}

}  // namespace ctfl
