#ifndef CTFL_CORE_ROUNDS_H_
#define CTFL_CORE_ROUNDS_H_

#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// Longitudinal contribution ledger for a federation that re-scores every
/// settlement round (the sustainability angle of the paper's intro: stable,
/// explainable revenue over time keeps providers participating).
///
/// Tracks, per participant: cumulative score mass, an exponential moving
/// average (EMA) of the per-round score, and drift alerts when a round's
/// score departs sharply from the participant's EMA — the operator's cue
/// to audit (data loss, new poisoning, or a data refresh).
class RoundTracker {
 public:
  struct Config {
    /// EMA smoothing factor in (0, 1]; 1 = no smoothing.
    double ema_alpha = 0.3;
    /// Relative deviation from the EMA that raises a drift alert.
    double drift_threshold = 0.5;
    /// Rounds to observe before drift alerts arm (EMA needs warm-up).
    int warmup_rounds = 2;
  };

  struct ParticipantState {
    double cumulative = 0.0;
    double ema = 0.0;
    double last_score = 0.0;
    int rounds_seen = 0;
  };

  struct DriftAlert {
    int participant = 0;
    int round = 0;
    double score = 0.0;
    double ema_before = 0.0;
    /// (score - ema) / max(ema, floor); sign tells the direction.
    double relative_drift = 0.0;
  };

  RoundTracker(int num_participants, Config config);

  int num_participants() const {
    return static_cast<int>(states_.size());
  }
  int rounds_recorded() const { return round_; }

  /// Ingests one round's scores (one per participant); returns the drift
  /// alerts this round raised.
  Result<std::vector<DriftAlert>> RecordRound(
      const std::vector<double>& scores);

  const ParticipantState& state(int participant) const {
    return states_[participant];
  }

  /// Participants ranked by cumulative contribution, descending.
  std::vector<int> CumulativeRanking() const;

  /// Multi-round summary table.
  std::string Summary() const;

 private:
  Config config_;
  std::vector<ParticipantState> states_;
  int round_ = 0;
};

}  // namespace ctfl

#endif  // CTFL_CORE_ROUNDS_H_
