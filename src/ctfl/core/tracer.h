#ifndef CTFL_CORE_TRACER_H_
#define CTFL_CORE_TRACER_H_

#include <cstdint>
#include <vector>

#include "ctfl/fl/participant.h"
#include "ctfl/kernel/trace_kernel.h"
#include "ctfl/mining/test_grouping.h"
#include "ctfl/nn/logical_net.h"

namespace ctfl {

/// Knobs of the rule-based tracing procedure (paper §III-C).
struct TracerConfig {
  /// Eq. 4 threshold: a training instance is related to a test instance if
  /// it activates at least tau_w of the test's weighted supporting rules.
  double tau_w = 0.9;
  /// Deduplicate test instances with identical (class, supporting rules):
  /// their related sets are provably identical, so they are traced once.
  bool use_dedup = true;
  /// Max-Miner frequent-ruleset grouping: prefilter training candidates
  /// per group before the exact per-test check (paper's acceleration).
  bool use_max_miner = true;
  GroupingConfig grouping;
  /// Worker threads for the tracing loop (0 = hardware concurrency,
  /// 1 = serial).
  int num_threads = 0;
  /// Rules whose vote weight is below this are ignored during tracing
  /// (they carry no classification signal, only noise).
  double min_rule_weight = 1e-6;
  /// Local differential privacy on the uploaded training activation
  /// vectors: per-bit randomized response at this epsilon (paper §V:
  /// activation vectors "can be further perturbed to guarantee
  /// differential privacy"). 0 disables perturbation. Smaller epsilon =
  /// stronger privacy = noisier tracing.
  double dp_epsilon = 0.0;
  uint64_t dp_seed = 0x5eed;
  /// Eq. 4 matching implementation (DESIGN.md §10). kBlocked scores keys
  /// against a transposed rule-major bit-matrix with weight-sorted
  /// early-exit pruning; kLegacy is the scalar per-record reference.
  /// Results are bit-identical either way.
  TraceKernelKind kernel = TraceKernelKind::kBlocked;
  /// SIMD tier of the blocked kernel (defaults to the process-wide
  /// runtime selection) and worker threads sharding each Match call's
  /// block range (1 = serial, 0 = hardware concurrency). Both are pure
  /// implementation selectors: results stay bit-identical, and neither
  /// enters the config digest (DESIGN.md §9).
  TraceIsa isa = CurrentTraceIsa();
  int trace_threads = 1;
};

/// One reserved test instance's forward-pass artifacts: true label,
/// predicted class, and the raw (un-masked) rule-activation bitset.
/// Everything the tracing pass needs from a test instance, decoupled from
/// the Dataset — a streaming fold (src/ctfl/stream/) re-traces persisted
/// forwards without ever seeing raw test features.
struct TestForward {
  uint8_t label = 0;
  uint8_t predicted = 0;
  Bitset activation;
};

/// Tracing outcome for one test instance.
struct TestTrace {
  int predicted = 0;
  bool correct = false;
  /// Number of supporting rules activated by the test instance.
  int support_size = 0;
  /// |D_i ∩ ct(x_te, y_te, tau_w)| per participant (Eq. 4).
  std::vector<int> related_count;
  size_t total_related = 0;
};

/// Full output of one tracing pass over the reserved test set — the raw
/// material for both allocation schemes (Eq. 5/6), loss tracing, and every
/// interpretability report, produced by a single pass (the paper's core
/// efficiency claim).
struct TraceResult {
  int num_participants = 0;
  int num_rules = 0;
  std::vector<TestTrace> tests;

  /// Per participant, per local training instance: how many correctly /
  /// incorrectly classified test instances it was related to. Never-
  /// matched records are a participant's useless-data ratio (§IV-B).
  std::vector<std::vector<int>> train_match_correct;
  std::vector<std::vector<int>> train_match_miss;

  /// Weight-regularized rule activation frequencies per participant
  /// accumulated over related (test, train) pairs: rows = participants,
  /// cols = rule coordinates. "Beneficial" counts come from correctly
  /// classified tests, "harmful" from misclassifications (§IV-B).
  Matrix beneficial_rule_freq;
  Matrix harmful_rule_freq;

  /// Weighted activation frequency of rules over misclassified tests with
  /// no related training data — the uncovered scenarios that should guide
  /// new data collection (§IV-B "Guide Data Collection").
  std::vector<double> uncovered_rule_freq;
  size_t uncovered_tests = 0;

  /// Test accuracy of the global model (= v(D_N), Eq. 1).
  double global_accuracy = 0.0;
  /// Fraction of test instances that are correct *and* have at least one
  /// related training record (the mass the micro scheme distributes).
  double matched_accuracy = 0.0;
  double tracing_seconds = 0.0;

  // ---- Tracer pass telemetry (feeds telemetry::RunTelemetry) -----------
  /// Distinct (class, supporting-rule-set) keys after dedup — the number
  /// of actual tracing tasks.
  int64_t num_keys = 0;
  /// Candidate (key, training-record) pairs tested against tau_w.
  int64_t tau_w_checks = 0;
  /// Pairs that met the tau_w threshold (total related-record hits).
  int64_t related_records = 0;
  /// Blocked-kernel work accounting (0 on the legacy path): candidate
  /// records the kernel actually touched (always <= tau_w_checks) and
  /// 64-record blocks skipped or early-exited by pruning.
  int64_t records_scanned = 0;
  int64_t blocks_pruned = 0;
  /// Lanes re-decided by the exact scalar comparison because the pruning
  /// bounds landed inside the float-drift safety band (0 on legacy).
  int64_t exact_fallbacks = 0;
};

/// Traces the test-performance gain of a trained global rule-based model
/// back to participants' training records via activated rules (paper
/// §III-C). Participants "upload" only rule-activation bitsets of their
/// data — mirroring the privacy boundary of §V.
class ContributionTracer {
 public:
  /// `net` and `federation` must outlive the tracer. Computes each
  /// participant's rule-activation upload locally (with optional DP
  /// perturbation, per `config.dp_epsilon`).
  ContributionTracer(const LogicalNet* net, const Federation* federation,
                     TracerConfig config);

  /// Same, but reuses already-uploaded activation bitsets instead of
  /// recomputing them — the restore path of a persisted contribution
  /// bundle (store/). `train_activations` must be indexed
  /// [participant][local record], sized to the federation, with every
  /// bitset as wide as the model's rule count. The bitsets are adopted
  /// verbatim: if they were DP-perturbed at snapshot time, tracing
  /// reproduces the originating run regardless of `config.dp_epsilon`.
  ContributionTracer(const LogicalNet* net, const Federation* federation,
                     TracerConfig config,
                     std::vector<std::vector<Bitset>> train_activations);

  /// Borrowing constructor: traces against externally owned labels and
  /// activation uploads with no Federation at all — the streaming-scorer
  /// path, which holds the uploads across rounds and re-traces them after
  /// each fold without copying. `labels` and `activations` must outlive
  /// the tracer, be index-aligned [participant][local record], and every
  /// bitset must be as wide as the model's rule count.
  ContributionTracer(const LogicalNet* net,
                     const std::vector<std::vector<uint8_t>>* labels,
                     const std::vector<std::vector<Bitset>>* activations,
                     TracerConfig config);

  const TracerConfig& config() const { return config_; }

  /// The per-participant activation uploads this tracer matches against
  /// (after any DP perturbation) — exactly what a bundle snapshot must
  /// persist for queries to reproduce this run.
  const std::vector<std::vector<Bitset>>& train_activations() const {
    return activations();
  }

  /// Computes the per-participant activation uploads exactly as the
  /// tracing constructor does: one DP stream per participant, seeded
  /// `dp_seed + p`, consumed in record order. Shared with the streaming
  /// delta-log emitter so per-round uploads bit-match a tracer built on
  /// the same model.
  static std::vector<std::vector<Bitset>> ComputeUploadActivations(
      const LogicalNet& net, const Federation& federation,
      const TracerConfig& config);

  /// Single tracing pass over the reserved test set.
  TraceResult Trace(const Dataset& test) const;

  /// Tracing pass over precomputed test forwards (label, prediction, raw
  /// activation per test). Trace() is exactly a forward pass followed by
  /// this; the streaming scorer calls it directly with persisted forwards.
  TraceResult TraceForwards(const std::vector<TestForward>& forwards) const;

 private:
  struct TrainRef {
    int participant;
    int local_index;
    const Bitset* activation;
  };

  /// Zeroes sub-threshold rule weights and builds the per-class masks.
  void BuildRuleMasks();
  /// Builds train_by_class_ refs over train_activations_ (which must
  /// already be populated and sized to the federation), then packs the
  /// per-class blocked kernels when config_.kernel == kBlocked.
  void IndexTrainRefs();

  /// The activation uploads tracing matches against: owned (computed or
  /// adopted) unless the borrowing constructor installed an external set.
  const std::vector<std::vector<Bitset>>& activations() const {
    return borrowed_activations_ != nullptr ? *borrowed_activations_
                                            : train_activations_;
  }

  const LogicalNet* net_;
  /// Null in borrowed mode (labels/activations supplied directly).
  const Federation* federation_;
  TracerConfig config_;

  /// Rule vote weights, with sub-threshold weights zeroed.
  std::vector<double> rule_weights_;
  /// Per class c: bitset of rule coordinates supporting c (and traceable).
  Bitset class_mask_[2];
  /// Per participant: activation bitsets of its training data (empty when
  /// borrowing).
  std::vector<std::vector<Bitset>> train_activations_;
  /// Borrowed-mode inputs (null otherwise).
  const std::vector<std::vector<uint8_t>>* borrowed_labels_ = nullptr;
  const std::vector<std::vector<Bitset>>* borrowed_activations_ = nullptr;
  /// Per class: refs to all training instances with that label.
  std::vector<TrainRef> train_by_class_[2];
  /// Per class: slot offsets of each participant's contiguous record range
  /// inside train_by_class_[c] (size n+1; participant p owns
  /// [ofs[p], ofs[p+1])). IndexTrainRefs appends participants in order, so
  /// buckets are participant-contiguous — the closed-form §IV-B
  /// accumulation popcounts per (rule, participant) range on top of this.
  std::vector<size_t> class_part_offset_[2];
  /// Per class: transposed rule-major bit-matrix over the class bucket
  /// (built only when config_.kernel == kBlocked; empty otherwise).
  TraceKernel class_kernel_[2];
};

}  // namespace ctfl

#endif  // CTFL_CORE_TRACER_H_
