#include "ctfl/core/interpret.h"

#include <algorithm>

#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

// Top-k (rule, freq) pairs of one row of a frequency matrix. When ranking
// distinctively, a rule's sort key is freq_p^2 / sum_q freq_q: high when
// the participant accounts for most of the rule's tracing mass.
std::vector<RuleFrequency> TopRules(const Matrix& freq, int participant,
                                    int top_k, bool distinctive) {
  std::vector<RuleFrequency> all;
  std::vector<double> keys;
  for (size_t j = 0; j < freq.cols(); ++j) {
    const double f = freq(participant, j);
    if (f <= 0.0) continue;
    double key = f;
    if (distinctive) {
      double total = 0.0;
      for (size_t p = 0; p < freq.rows(); ++p) total += freq(p, j);
      key = f * (f / total);
    }
    all.push_back({static_cast<int>(j), f});
    keys.push_back(key);
  }
  std::vector<size_t> order(all.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (keys[a] != keys[b]) return keys[a] > keys[b];
    return all[a].rule < all[b].rule;
  });
  std::vector<RuleFrequency> sorted;
  for (size_t i : order) sorted.push_back(all[i]);
  if (top_k >= 0 && static_cast<int>(sorted.size()) > top_k) {
    sorted.resize(top_k);
  }
  return sorted;
}

}  // namespace

std::vector<ParticipantProfile> BuildProfiles(const TraceResult& trace,
                                              int top_k, bool distinctive) {
  std::vector<ParticipantProfile> profiles;
  for (int p = 0; p < trace.num_participants; ++p) {
    ParticipantProfile profile;
    profile.participant = p;
    profile.data_size = trace.train_match_correct[p].size();
    profile.beneficial =
        TopRules(trace.beneficial_rule_freq, p, top_k, distinctive);
    profile.harmful =
        TopRules(trace.harmful_rule_freq, p, top_k, distinctive);
    size_t never_matched = 0;
    for (size_t i = 0; i < profile.data_size; ++i) {
      if (trace.train_match_correct[p][i] == 0 &&
          trace.train_match_miss[p][i] == 0) {
        ++never_matched;
      }
    }
    profile.useless_ratio =
        profile.data_size == 0
            ? 0.0
            : static_cast<double>(never_matched) / profile.data_size;
    profiles.push_back(std::move(profile));
  }
  return profiles;
}

CollectionGuidance GuideDataCollection(const TraceResult& trace, int top_k) {
  CollectionGuidance guidance;
  guidance.uncovered_tests = trace.uncovered_tests;
  for (size_t j = 0; j < trace.uncovered_rule_freq.size(); ++j) {
    if (trace.uncovered_rule_freq[j] > 0.0) {
      guidance.uncovered_rules.push_back(
          {static_cast<int>(j), trace.uncovered_rule_freq[j]});
    }
  }
  std::sort(guidance.uncovered_rules.begin(), guidance.uncovered_rules.end(),
            [](const RuleFrequency& a, const RuleFrequency& b) {
              if (a.weighted_frequency != b.weighted_frequency) {
                return a.weighted_frequency > b.weighted_frequency;
              }
              return a.rule < b.rule;
            });
  if (top_k >= 0 &&
      static_cast<int>(guidance.uncovered_rules.size()) > top_k) {
    guidance.uncovered_rules.resize(top_k);
  }
  return guidance;
}

namespace {

// Appends one rule-frequency block, merging rules whose symbolic form is
// identical (distinct logic nodes often converge to the same formula).
void AppendRuleLines(const std::vector<RuleFrequency>& rules,
                     const ExtractionResult& extraction,
                     const FeatureSchema& schema, std::string& out) {
  std::vector<std::string> seen;
  for (const RuleFrequency& rf : rules) {
    const ExtractedRule& er = extraction.rules[rf.rule];
    const std::string text = er.rule.ToString(schema);
    bool duplicate = false;
    for (const std::string& s : seen) {
      if (s == text) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    seen.push_back(text);
    out += StrFormat("    [%s freq=%.2f] %s\n",
                     er.support_class == 1 ? "+" : "-",
                     rf.weighted_frequency, text.c_str());
  }
}

}  // namespace

std::string FormatProfile(const ParticipantProfile& profile,
                          const ExtractionResult& extraction,
                          const FeatureSchema& schema,
                          const std::string& participant_name) {
  std::string out =
      StrFormat("== %s (%zu records, useless ratio %.2f) ==\n",
                participant_name.c_str(), profile.data_size,
                profile.useless_ratio);
  out += "  beneficial characteristics:\n";
  AppendRuleLines(profile.beneficial, extraction, schema, out);
  if (!profile.harmful.empty()) {
    out += "  harmful characteristics:\n";
    AppendRuleLines(profile.harmful, extraction, schema, out);
  }
  return out;
}

std::string FormatGuidance(const CollectionGuidance& guidance,
                           const ExtractionResult& extraction,
                           const FeatureSchema& schema) {
  std::string out = StrFormat(
      "%zu misclassified test instances lack related training data.\n"
      "Collect data covering these frequently activated patterns:\n",
      guidance.uncovered_tests);
  for (const RuleFrequency& rf : guidance.uncovered_rules) {
    const ExtractedRule& er = extraction.rules[rf.rule];
    out += StrFormat("  [freq=%.2f] %s\n", rf.weighted_frequency,
                     er.rule.ToString(schema).c_str());
  }
  return out;
}

}  // namespace ctfl
