#include "ctfl/core/pipeline.h"

#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {

CtflReport RunCtfl(const Federation& federation, const Dataset& test,
                   const CtflConfig& config) {
  CTFL_CHECK(!federation.empty());
  const SchemaPtr schema = federation[0].data.schema();

  Stopwatch train_watch;
  LogicalNet model = [&] {
    if (config.federated) {
      std::vector<Dataset> clients;
      clients.reserve(federation.size());
      for (const Participant& p : federation) clients.push_back(p.data);
      return TrainFederated(schema, config.net, clients, config.fedavg);
    }
    return TrainCentral(schema, config.net, MergeFederation(federation),
                        config.central);
  }();
  const double train_seconds = train_watch.ElapsedSeconds();

  CtflReport report(std::move(model));
  report.train_seconds = train_seconds;

  const ContributionTracer tracer(&report.model, &federation, config.tracer);
  report.trace = tracer.Trace(test);
  report.trace_seconds = report.trace.tracing_seconds;
  report.test_accuracy = report.trace.global_accuracy;
  report.micro_scores = MicroAllocation(report.trace);
  report.macro_scores = MacroAllocation(report.trace, config.macro_delta);
  return report;
}

CtflScheme::CtflScheme(const Federation* federation, const Dataset* test,
                       CtflConfig config, Variant variant)
    : federation_(federation),
      test_(test),
      config_(std::move(config)),
      variant_(variant) {
  CTFL_CHECK(federation_ != nullptr && test_ != nullptr);
}

Result<ContributionResult> CtflScheme::Compute(CoalitionUtility& utility) {
  if (utility.num_participants() !=
      static_cast<int>(federation_->size())) {
    return Status::InvalidArgument(
        "utility participant count does not match the federation");
  }
  Stopwatch watch;
  report_ = std::make_shared<CtflReport>(
      RunCtfl(*federation_, *test_, config_));
  ContributionResult result;
  result.scheme = name();
  result.scores = variant_ == Variant::kMicro ? report_->micro_scores
                                              : report_->macro_scores;
  result.coalitions_evaluated = 1;  // the single global model
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ctfl
