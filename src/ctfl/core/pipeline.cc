#include "ctfl/core/pipeline.h"

#include <fstream>

#include "ctfl/nn/matrix.h"
#include "ctfl/store/snapshot.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {

namespace {

/// Applies the master num_threads knob to every per-component setting
/// (see CtflConfig::num_threads).
CtflConfig ApplyThreadOverrides(const CtflConfig& in) {
  CtflConfig out = in;
  if (in.num_threads >= 0) {
    out.fedavg.num_threads = in.num_threads;
    out.fedavg.local.num_threads = in.num_threads;
    out.central.num_threads = in.num_threads;
    out.tracer.num_threads = in.num_threads;
    SetMatrixParallelism(in.num_threads);
  }
  return out;
}

}  // namespace

CtflReport RunCtfl(const Federation& federation, const Dataset& test,
                   const CtflConfig& raw_config) {
  CTFL_SPAN("ctfl.run");
  CTFL_CHECK(!federation.empty());
  const CtflConfig config = ApplyThreadOverrides(raw_config);
  const SchemaPtr schema = federation[0].data.schema();

  // ---- Phase 1: train the single global rule-based model. ---------------
  telemetry::Span train_span("ctfl.train");
  Stopwatch train_watch;
  FedAvgStats fedavg_stats;
  TrainReport central_report;
  LogicalNet model = [&] {
    if (config.federated) {
      std::vector<Dataset> clients;
      clients.reserve(federation.size());
      for (const Participant& p : federation) clients.push_back(p.data);
      Result<LogicalNet> trained = TrainFederated(
          schema, config.net, clients, config.fedavg, &fedavg_stats);
      // Per-client faults degrade rounds instead of failing the run, so
      // an error here means the configuration itself is malformed — a
      // caller bug by RunCtfl's contract (cf. the federation check
      // above).
      CTFL_CHECK(trained.ok())
          << "federated training failed: " << trained.status();
      return std::move(trained).value();
    }
    return TrainCentral(schema, config.net, MergeFederation(federation),
                        config.central, &central_report);
  }();
  const double train_seconds = train_watch.ElapsedSeconds();
  train_span.End();

  CtflReport report(std::move(model));
  report.train_seconds = train_seconds;

  telemetry::RunTelemetry& run = report.telemetry;
  run.train_seconds = train_seconds;
  if (config.federated) {
    run.rounds = std::move(fedavg_stats.rounds);
    run.grafting_steps = fedavg_stats.grafting_steps;
    run.clients_dropped = fedavg_stats.clients_dropped;
    run.retries = fedavg_stats.retries;
    run.rounds_degraded = fedavg_stats.rounds_degraded;
  } else {
    run.epochs = std::move(central_report.epoch_stats);
    run.grafting_steps = central_report.steps;
    run.train_accuracy = central_report.train_accuracy;
  }

  // Rule-extraction stats: how much of the trained model survives the
  // tracer's weight threshold (kept vs pruned rule coordinates).
  run.rules_total = report.model.num_rules();
  for (int j = 0; j < report.model.num_rules(); ++j) {
    if (report.model.RuleWeight(j) >= config.tracer.min_rule_weight) {
      ++run.rules_kept;
    } else {
      ++run.rules_pruned;
    }
  }

  // ---- Phase 2: single tracing pass. ------------------------------------
  const ContributionTracer tracer(&report.model, &federation, config.tracer);
  report.trace = tracer.Trace(test);
  report.trace_seconds = report.trace.tracing_seconds;
  report.test_accuracy = report.trace.global_accuracy;
  run.trace_seconds = report.trace.tracing_seconds;
  run.trace_keys = report.trace.num_keys;
  run.tau_w_checks = report.trace.tau_w_checks;
  run.related_records = report.trace.related_records;
  run.records_scanned = report.trace.records_scanned;
  run.blocks_pruned = report.trace.blocks_pruned;
  run.uncovered_tests = static_cast<int64_t>(report.trace.uncovered_tests);

  // ---- Phase 3: micro + macro credit allocation. ------------------------
  {
    CTFL_SPAN("ctfl.allocate");
    telemetry::ScopedTimer allocate_timer(&run.allocate_seconds);
    report.micro_scores = MicroAllocation(report.trace);
    report.macro_scores = MacroAllocation(report.trace, config.macro_delta);
  }

  // ---- Optional phase 4: persist the contribution bundle. ---------------
  if (!config.bundle_out.empty()) {
    CTFL_SPAN("ctfl.bundle.emit");
    store::SnapshotOptions snapshot;
    snapshot.tau_w = config.tracer.tau_w;
    snapshot.macro_delta = config.macro_delta;
    snapshot.min_rule_weight = config.tracer.min_rule_weight;
    snapshot.dp_epsilon = config.tracer.dp_epsilon;
    // A persisted run names the fault schedule it trained under: scores
    // from a degraded run are only reproducible given (seed, plan).
    snapshot.failure_plan_fingerprint =
        config.federated ? config.fedavg.failure.Fingerprint() : 0;
    snapshot.micro_scores = report.micro_scores;
    snapshot.macro_scores = report.macro_scores;
    snapshot.global_accuracy = report.trace.global_accuracy;
    snapshot.matched_accuracy = report.trace.matched_accuracy;
    Result<store::BundleContent> content = store::BuildBundleContent(
        report.model, federation, test, tracer.train_activations(), snapshot);
    report.bundle_status =
        content.ok() ? store::WriteBundle(*content, config.bundle_out)
                     : content.status();
    if (report.bundle_status.ok()) {
      std::ifstream in(config.bundle_out,
                       std::ios::binary | std::ios::ate);
      if (in) report.bundle_bytes = static_cast<size_t>(in.tellg());
    } else {
      CTFL_LOG(Warning) << "bundle emit to '" << config.bundle_out
                        << "' failed: " << report.bundle_status.message();
    }
  }

  static telemetry::Counter& run_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.runs");
  run_counter.Add(1);
  return report;
}

CtflScheme::CtflScheme(const Federation* federation, const Dataset* test,
                       CtflConfig config, Variant variant)
    : federation_(federation),
      test_(test),
      config_(std::move(config)),
      variant_(variant) {
  CTFL_CHECK(federation_ != nullptr && test_ != nullptr);
}

Result<ContributionResult> CtflScheme::Compute(CoalitionUtility& utility) {
  if (utility.num_participants() !=
      static_cast<int>(federation_->size())) {
    return Status::InvalidArgument(
        "utility participant count does not match the federation");
  }
  Stopwatch watch;
  report_ = std::make_shared<CtflReport>(
      RunCtfl(*federation_, *test_, config_));
  ContributionResult result;
  result.scheme = name();
  result.scores = variant_ == Variant::kMicro ? report_->micro_scores
                                              : report_->macro_scores;
  result.coalitions_evaluated = 1;  // the single global model
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ctfl
