#include "ctfl/core/pipeline.h"

#include <cstring>
#include <fstream>

#include "ctfl/data/schema.h"
#include "ctfl/nn/matrix.h"
#include "ctfl/store/snapshot.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/build_info.h"
#include "ctfl/util/cpu_time.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"

namespace ctfl {

namespace {

/// Applies the master num_threads knob to every per-component setting
/// (see CtflConfig::num_threads).
CtflConfig ApplyThreadOverrides(const CtflConfig& in) {
  CtflConfig out = in;
  if (in.num_threads >= 0) {
    out.fedavg.num_threads = in.num_threads;
    out.fedavg.local.num_threads = in.num_threads;
    out.central.num_threads = in.num_threads;
    out.tracer.num_threads = in.num_threads;
    SetMatrixParallelism(in.num_threads);
  }
  return out;
}

/// SplitMix64 finalizer (same mixer failure.cc uses): full-avalanche,
/// cheap, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-sensitive accumulator for config digests: every knob is mixed
/// as a 64-bit word, doubles by bit pattern (so a digest changes iff a
/// knob's exact value changes).
class Digest {
 public:
  void Mix(uint64_t v) { state_ = Mix64(state_ ^ v); }
  void MixInt(int64_t v) { Mix(static_cast<uint64_t>(v)); }
  void MixBool(bool v) { Mix(v ? 1u : 2u); }
  void MixDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0xc7f1d16e57ab1e5ULL;  // arbitrary non-zero seed
};

void MixTrainConfig(const TrainConfig& c, Digest& d) {
  d.MixInt(c.epochs);
  d.MixInt(c.batch_size);
  d.MixDouble(c.learning_rate);
  d.MixBool(c.use_adam);
  d.MixDouble(c.sgd_momentum);
  d.Mix(c.seed);
}

}  // namespace

Result<CtflReport> RunCtfl(const Federation& federation, const Dataset& test,
                           const CtflConfig& raw_config) {
  CTFL_SPAN("ctfl.run");
  if (federation.empty()) {
    return Status::InvalidArgument("RunCtfl requires a non-empty federation");
  }
  const CtflConfig config = ApplyThreadOverrides(raw_config);
  const SchemaPtr schema = federation[0].data.schema();
  // Context-switch counters are monotone process totals; snapshot them
  // here so the report carries this run's delta, not the process's
  // lifetime churn.
  const ResourceUsage usage_start = CurrentResourceUsage();

  // ---- Phase 1: train the single global rule-based model. ---------------
  telemetry::Span train_span("ctfl.train");
  Stopwatch train_watch;
  // Process-CPU clock: phases fan work out to ThreadPool workers, whose
  // CPU time a thread clock would miss. cpu/wall ratio ~ effective
  // parallelism; cpu <= wall * threads always holds (pinned by tests).
  ProcessCpuStopwatch phase_cpu_watch;
  FedAvgStats fedavg_stats;
  TrainReport central_report;
  Result<LogicalNet> trained = [&]() -> Result<LogicalNet> {
    if (config.federated) {
      std::vector<Dataset> clients;
      clients.reserve(federation.size());
      for (const Participant& p : federation) clients.push_back(p.data);
      return TrainFederated(schema, config.net, clients, config.fedavg,
                            &fedavg_stats);
    }
    return TrainCentral(schema, config.net, MergeFederation(federation),
                        config.central, &central_report);
  }();
  // Per-client faults degrade rounds instead of failing the run, so an
  // error here means the configuration itself is malformed (e.g. a
  // negative retry budget). Propagate it — callers surface the Status
  // instead of the process dying mid-settlement.
  CTFL_RETURN_IF_ERROR(trained.status());
  LogicalNet model = std::move(trained).value();
  const double train_seconds = train_watch.ElapsedSeconds();
  const double train_cpu_seconds = phase_cpu_watch.LapSeconds();
  train_span.End();

  CtflReport report(std::move(model));
  report.train_seconds = train_seconds;

  telemetry::RunTelemetry& run = report.telemetry;
  run.train_seconds = train_seconds;
  run.train_cpu_seconds = train_cpu_seconds;
  if (config.federated) {
    run.rounds = std::move(fedavg_stats.rounds);
    run.grafting_steps = fedavg_stats.grafting_steps;
    run.clients_dropped = fedavg_stats.clients_dropped;
    run.retries = fedavg_stats.retries;
    run.rounds_degraded = fedavg_stats.rounds_degraded;
  } else {
    run.epochs = std::move(central_report.epoch_stats);
    run.grafting_steps = central_report.steps;
    run.train_accuracy = central_report.train_accuracy;
  }

  // Rule-extraction stats: how much of the trained model survives the
  // tracer's weight threshold (kept vs pruned rule coordinates).
  run.rules_total = report.model.num_rules();
  for (int j = 0; j < report.model.num_rules(); ++j) {
    if (report.model.RuleWeight(j) >= config.tracer.min_rule_weight) {
      ++run.rules_kept;
    } else {
      ++run.rules_pruned;
    }
  }

  // ---- Phase 2: single tracing pass. ------------------------------------
  phase_cpu_watch.Restart();
  const ContributionTracer tracer(&report.model, &federation, config.tracer);
  report.trace = tracer.Trace(test);
  run.trace_cpu_seconds = phase_cpu_watch.LapSeconds();
  report.trace_seconds = report.trace.tracing_seconds;
  report.test_accuracy = report.trace.global_accuracy;
  run.trace_seconds = report.trace.tracing_seconds;
  run.trace_keys = report.trace.num_keys;
  run.tau_w_checks = report.trace.tau_w_checks;
  run.related_records = report.trace.related_records;
  run.records_scanned = report.trace.records_scanned;
  run.blocks_pruned = report.trace.blocks_pruned;
  run.exact_fallbacks = report.trace.exact_fallbacks;
  run.uncovered_tests = static_cast<int64_t>(report.trace.uncovered_tests);

  // ---- Phase 3: micro + macro credit allocation. ------------------------
  {
    CTFL_SPAN("ctfl.allocate");
    phase_cpu_watch.Restart();
    telemetry::ScopedTimer allocate_timer(&run.allocate_seconds);
    report.micro_scores = MicroAllocation(report.trace);
    report.macro_scores = MacroAllocation(report.trace, config.macro_delta);
  }
  run.allocate_cpu_seconds = phase_cpu_watch.LapSeconds();

  // ---- Optional phase 4: persist the contribution bundle. ---------------
  if (!config.bundle_out.empty()) {
    CTFL_SPAN("ctfl.bundle.emit");
    store::SnapshotOptions snapshot;
    snapshot.tau_w = config.tracer.tau_w;
    snapshot.macro_delta = config.macro_delta;
    snapshot.min_rule_weight = config.tracer.min_rule_weight;
    snapshot.dp_epsilon = config.tracer.dp_epsilon;
    // A persisted run names the fault schedule it trained under: scores
    // from a degraded run are only reproducible given (seed, plan).
    snapshot.failure_plan_fingerprint =
        config.federated ? config.fedavg.failure.Fingerprint() : 0;
    snapshot.micro_scores = report.micro_scores;
    snapshot.macro_scores = report.macro_scores;
    snapshot.global_accuracy = report.trace.global_accuracy;
    snapshot.matched_accuracy = report.trace.matched_accuracy;
    Result<store::BundleContent> content = store::BuildBundleContent(
        report.model, federation, test, tracer.train_activations(), snapshot);
    report.bundle_status =
        content.ok() ? store::WriteBundle(*content, config.bundle_out)
                     : content.status();
    if (report.bundle_status.ok()) {
      std::ifstream in(config.bundle_out,
                       std::ios::binary | std::ios::ate);
      if (in) report.bundle_bytes = static_cast<size_t>(in.tellg());
    } else {
      CTFL_LOG(Warning) << "bundle emit to '" << config.bundle_out
                        << "' failed: " << report.bundle_status.message();
    }
  }

  const ResourceUsage usage_end = CurrentResourceUsage();
  run.max_rss_kb = usage_end.max_rss_kb;  // high-water mark, not a delta
  run.voluntary_ctx_switches =
      usage_end.voluntary_ctx_switches - usage_start.voluntary_ctx_switches;
  run.involuntary_ctx_switches = usage_end.involuntary_ctx_switches -
                                 usage_start.involuntary_ctx_switches;

  static telemetry::Counter& run_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.runs");
  run_counter.Add(1);
  return report;
}

uint64_t CtflConfigDigest(const CtflConfig& config) {
  Digest d;
  d.MixInt(config.net.tau_d);
  d.MixInt(static_cast<int64_t>(config.net.logic_layers.size()));
  for (const auto& [conj, disj] : config.net.logic_layers) {
    d.MixInt(conj);
    d.MixInt(disj);
  }
  d.MixInt(config.net.fan_in);
  d.MixBool(config.net.input_skip);
  d.MixDouble(config.net.linear_init_scale);
  d.Mix(config.net.seed);

  d.MixBool(config.federated);
  if (config.federated) {
    d.MixInt(config.fedavg.rounds);
    d.MixInt(config.fedavg.local_epochs);
    MixTrainConfig(config.fedavg.local, d);
    d.MixBool(config.fedavg.secure_aggregation);
    d.Mix(config.fedavg.secure_session_seed);
    d.MixInt(config.fedavg.retry_budget);
  } else {
    MixTrainConfig(config.central, d);
  }

  d.MixDouble(config.tracer.tau_w);
  d.MixBool(config.tracer.use_dedup);
  d.MixBool(config.tracer.use_max_miner);
  d.MixDouble(config.tracer.grouping.min_support_fraction);
  d.MixInt(static_cast<int64_t>(config.tracer.grouping.min_instances));
  d.MixDouble(config.tracer.grouping.max_item_support_fraction);
  d.MixInt(static_cast<int64_t>(config.tracer.grouping.max_expansions));
  d.MixInt(static_cast<int64_t>(config.tracer.grouping.max_itemsets));
  d.MixDouble(config.tracer.min_rule_weight);
  d.MixDouble(config.tracer.dp_epsilon);
  d.Mix(config.tracer.dp_seed);
  // tracer.kernel, tracer.isa, and tracer.trace_threads are deliberately
  // NOT mixed: like the thread knobs they select a bit-identical
  // implementation (DESIGN.md §10), so legacy/blocked runs at any SIMD
  // tier and trace thread count share one digest — the replay harness's
  // kernel-flip and isa-flip cells rely on this.
  d.MixInt(config.macro_delta);
  return d.value();
}

telemetry::RunReport MakeRunReport(const CtflReport& report,
                                   const CtflConfig& config,
                                   const Federation& federation,
                                   const Dataset& test) {
  telemetry::RunReport out;
  out.config_digest = CtflConfigDigest(config);
  out.schema_fingerprint =
      federation.empty() ? 0
                         : SchemaFingerprint(*federation[0].data.schema());
  out.failure_plan_fingerprint =
      config.federated ? config.fedavg.failure.Fingerprint() : 0;

  out.federated = config.federated;
  out.num_participants = static_cast<int>(federation.size());
  for (const Participant& p : federation) {
    out.train_records += static_cast<int64_t>(p.data.size());
  }
  out.test_records = static_cast<int64_t>(test.size());
  out.test_accuracy = report.test_accuracy;
  out.build_type = BuildTypeName();
  out.trace_isa = TraceIsaName(config.tracer.isa);
  out.telemetry = report.telemetry;

  // The run fingerprint folds identity and data shape into one word: two
  // runs with equal fingerprints replay each other's scores bit-for-bit.
  Digest run_id;
  run_id.Mix(out.config_digest);
  run_id.Mix(out.schema_fingerprint);
  run_id.Mix(out.failure_plan_fingerprint);
  run_id.MixInt(out.num_participants);
  for (const Participant& p : federation) {
    run_id.MixInt(static_cast<int64_t>(p.data.size()));
  }
  run_id.MixInt(out.test_records);
  out.run_fingerprint = run_id.value();
  return out;
}

CtflScheme::CtflScheme(const Federation* federation, const Dataset* test,
                       CtflConfig config, Variant variant)
    : federation_(federation),
      test_(test),
      config_(std::move(config)),
      variant_(variant) {
  CTFL_CHECK(federation_ != nullptr && test_ != nullptr);
}

Result<ContributionResult> CtflScheme::Compute(CoalitionUtility& utility) {
  if (utility.num_participants() !=
      static_cast<int>(federation_->size())) {
    return Status::InvalidArgument(
        "utility participant count does not match the federation");
  }
  Stopwatch watch;
  CTFL_ASSIGN_OR_RETURN(CtflReport report,
                        RunCtfl(*federation_, *test_, config_));
  report_ = std::make_shared<CtflReport>(std::move(report));
  ContributionResult result;
  result.scheme = name();
  result.scores = variant_ == Variant::kMicro ? report_->micro_scores
                                              : report_->macro_scores;
  result.coalitions_evaluated = 1;  // the single global model
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace ctfl
