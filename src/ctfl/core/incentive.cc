#include "ctfl/core/incentive.h"

#include <algorithm>

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

std::vector<Payout> ComputePayouts(const CtflReport& report,
                                   const IncentiveConfig& config) {
  const std::vector<double>& scores =
      config.use_macro ? report.macro_scores : report.micro_scores;
  const LossReport loss = AnalyzeLoss(report.trace, config.loss);
  const int n = static_cast<int>(scores.size());

  std::vector<Payout> payouts(n);
  double weight_total = 0.0;
  int unflagged = 0;
  for (int p = 0; p < n; ++p) {
    payouts[p].participant = p;
    payouts[p].score = scores[p];
    payouts[p].suspicion = loss.suspicion[p];
    payouts[p].flagged =
        std::find(loss.flagged.begin(), loss.flagged.end(), p) !=
        loss.flagged.end();
    if (!payouts[p].flagged) ++unflagged;
  }
  CTFL_CHECK(config.participation_floor >= 0.0);
  const double floor_total = config.participation_floor * unflagged;
  const double pool = std::max(0.0, config.budget - floor_total);

  for (Payout& payout : payouts) {
    double weight = std::max(0.0, payout.score);
    if (payout.flagged) weight *= std::max(0.0, config.flagged_penalty);
    payout.amount = weight;  // provisional, normalized below
    weight_total += weight;
  }
  for (Payout& payout : payouts) {
    payout.amount =
        weight_total > 0.0 ? pool * payout.amount / weight_total : 0.0;
    if (!payout.flagged) payout.amount += config.participation_floor;
  }
  return payouts;
}

std::string FormatPayouts(const std::vector<Payout>& payouts) {
  std::string out =
      "participant   score    suspicion  status    payout\n";
  for (const Payout& p : payouts) {
    out += StrFormat("P%-11d %.4f   %.3f      %-8s %10.2f\n",
                     p.participant, p.score, p.suspicion,
                     p.flagged ? "FLAGGED" : "ok", p.amount);
  }
  return out;
}

}  // namespace ctfl
