#ifndef CTFL_CORE_INCENTIVE_H_
#define CTFL_CORE_INCENTIVE_H_

#include <string>
#include <vector>

#include "ctfl/core/loss_tracing.h"
#include "ctfl/core/pipeline.h"

namespace ctfl {

/// A budgeted revenue-allocation mechanism built on CTFL scores — the
/// "systematic incentive mechanism leveraging CTFL" the paper names as
/// future work. Scores come from the replication-robust macro scheme (or
/// micro, per config); participants flagged by loss tracing are penalized
/// before normalization so poisoning cannot be revenue-positive.
struct IncentiveConfig {
  /// Total revenue to distribute this round.
  double budget = 100.0;
  /// Use macro (replication-robust) scores; false = micro.
  bool use_macro = true;
  /// Multiplier applied to a flagged participant's score (0 = forfeit).
  double flagged_penalty = 0.0;
  /// Participation floor paid to every unflagged participant, taken off
  /// the top of the budget (incentivizes staying in the federation even
  /// in rounds where one's data is redundant).
  double participation_floor = 0.0;
  LossAnalysisConfig loss;
};

struct Payout {
  int participant = 0;
  double score = 0.0;
  double suspicion = 0.0;
  bool flagged = false;
  double amount = 0.0;
};

/// Computes the round's payouts from a CTFL report. The returned amounts
/// sum to `budget` (when any participant qualifies; otherwise zero).
std::vector<Payout> ComputePayouts(const CtflReport& report,
                                   const IncentiveConfig& config);

std::string FormatPayouts(const std::vector<Payout>& payouts);

}  // namespace ctfl

#endif  // CTFL_CORE_INCENTIVE_H_
