#ifndef CTFL_CORE_ALLOCATION_H_
#define CTFL_CORE_ALLOCATION_H_

#include <vector>

#include "ctfl/core/tracer.h"

namespace ctfl {

/// Micro contribution allocation (paper Eq. 5): each correctly classified
/// test instance distributes its 1/|D_te| credit across participants in
/// proportion to their number of related training records — the FedAvg
/// volume-proportionality argument. With `on_correct = false` the same
/// formula runs over misclassified tests (the 1[ŷ≠y] variant of §IV-A),
/// yielding per-participant *loss* attribution.
std::vector<double> MicroAllocation(const TraceResult& trace,
                                    bool on_correct = true);

/// Macro (replication-robust) allocation (paper Eq. 6): each test instance
/// splits its credit *equally* among participants holding at least `delta`
/// related records, so duplicating data buys nothing.
std::vector<double> MacroAllocation(const TraceResult& trace, int delta,
                                    bool on_correct = true);

/// Macro scores for several delta values in one pass over the trace (the
/// "progressively without much extra computation" remark of §III-C).
std::vector<std::vector<double>> MacroAllocationSweep(
    const TraceResult& trace, const std::vector<int>& deltas,
    bool on_correct = true);

/// Metric-generalized micro allocation: each test instance t distributes
/// `test_weights[t]` (instead of 1/|D_te|) proportionally across related
/// participants. With weights from InstanceCreditWeights() this realizes
/// group rationality for any instance-decomposable metric, e.g. balanced
/// accuracy (paper §III-D: "group rationality can also be applied to other
/// performance metrics by modifying the allocation formula").
/// `test_weights` must have one entry per traced test instance.
std::vector<double> WeightedMicroAllocation(
    const TraceResult& trace, const std::vector<double>& test_weights,
    bool on_correct = true);

/// Metric-generalized macro allocation (equal split of the instance's
/// weight among participants with >= delta related records).
std::vector<double> WeightedMacroAllocation(
    const TraceResult& trace, const std::vector<double>& test_weights,
    int delta, bool on_correct = true);

}  // namespace ctfl

#endif  // CTFL_CORE_ALLOCATION_H_
