#ifndef CTFL_CORE_INTERPRET_H_
#define CTFL_CORE_INTERPRET_H_

#include <string>
#include <vector>

#include "ctfl/core/tracer.h"
#include "ctfl/rules/extraction.h"

namespace ctfl {

/// One frequently-activated rule of a participant, with its
/// weight-regularized activation frequency.
struct RuleFrequency {
  int rule = 0;
  double weighted_frequency = 0.0;
};

/// A participant's interpretable portrait (paper §IV-B): the rules its
/// data most often taught correctly (beneficial characteristics), the
/// rules its data backed on misclassifications (harmful), and the share
/// of its records never matched by any test instance (useless data).
struct ParticipantProfile {
  int participant = 0;
  size_t data_size = 0;
  std::vector<RuleFrequency> beneficial;
  std::vector<RuleFrequency> harmful;
  double useless_ratio = 0.0;
};

/// Extracts per-participant profiles from a tracing pass. With
/// `distinctive = true`, rules are ranked by frequency weighted by how
/// specific they are to the participant (freq_p / sum_q freq_q), so that a
/// participant's characteristic rules are not drowned out by generic
/// rules every participant matches (the ranking the paper's Table V case
/// study presents).
std::vector<ParticipantProfile> BuildProfiles(const TraceResult& trace,
                                              int top_k = 5,
                                              bool distinctive = false);

/// Data-collection guidance (paper §IV-B): the most frequently activated
/// rules among misclassified-and-unmatched test instances — the scenarios
/// the federation should recruit data for.
struct CollectionGuidance {
  size_t uncovered_tests = 0;
  std::vector<RuleFrequency> uncovered_rules;
};

CollectionGuidance GuideDataCollection(const TraceResult& trace,
                                       int top_k = 10);

/// Pretty-printers resolving rule coordinates to symbolic rule text.
std::string FormatProfile(const ParticipantProfile& profile,
                          const ExtractionResult& extraction,
                          const FeatureSchema& schema,
                          const std::string& participant_name);
std::string FormatGuidance(const CollectionGuidance& guidance,
                           const ExtractionResult& extraction,
                           const FeatureSchema& schema);

}  // namespace ctfl

#endif  // CTFL_CORE_INTERPRET_H_
