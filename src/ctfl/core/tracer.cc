#include "ctfl/core/tracer.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "ctfl/fl/privacy.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/stopwatch.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {
namespace {

constexpr double kRatioEps = 1e-9;

// A distinct (target class, supporting-rule set) tracing task. All test
// instances sharing a key have identical related sets.
struct TraceKey {
  int target_class = 0;
  Bitset support;                                // over rule coordinates
  std::vector<std::pair<int, double>> supp_list;  // (rule, weight)
  double weight_sum = 0.0;
  std::vector<size_t> members;  // test indices
  int correct_members = 0;
  int miss_members = 0;
};

}  // namespace

std::vector<std::vector<Bitset>> ContributionTracer::ComputeUploadActivations(
    const LogicalNet& net, const Federation& federation,
    const TracerConfig& config) {
  // Participants compute their activation vectors locally and upload them
  // (paper §V privacy analysis); here that is this precomputation. When
  // dp_epsilon > 0 each participant perturbs its upload with randomized
  // response before it leaves the client. Each participant's DP stream is
  // seeded dp_seed + p and consumed in record order, so any caller running
  // this against the same model reproduces the uploads bit-for-bit.
  std::vector<std::vector<Bitset>> uploads(federation.size());
  for (size_t p = 0; p < federation.size(); ++p) {
    const Dataset& data = federation[p].data;
    Rng dp_rng(config.dp_seed + p);
    uploads[p].reserve(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      Bitset activation = net.RuleActivations(data.instance(i));
      if (config.dp_epsilon > 0.0) {
        activation = RandomizedResponse(activation, config.dp_epsilon, dp_rng);
      }
      uploads[p].push_back(std::move(activation));
    }
  }
  return uploads;
}

ContributionTracer::ContributionTracer(const LogicalNet* net,
                                       const Federation* federation,
                                       TracerConfig config)
    : net_(net), federation_(federation), config_(config) {
  CTFL_CHECK(net_ != nullptr && federation_ != nullptr);
  BuildRuleMasks();
  train_activations_ = ComputeUploadActivations(*net_, *federation_, config_);
  IndexTrainRefs();
}

ContributionTracer::ContributionTracer(
    const LogicalNet* net, const Federation* federation, TracerConfig config,
    std::vector<std::vector<Bitset>> train_activations)
    : net_(net),
      federation_(federation),
      config_(config),
      train_activations_(std::move(train_activations)) {
  CTFL_CHECK(net_ != nullptr && federation_ != nullptr);
  CTFL_CHECK(train_activations_.size() == federation_->size());
  for (size_t p = 0; p < federation_->size(); ++p) {
    CTFL_CHECK(train_activations_[p].size() ==
               (*federation_)[p].data.size());
    for (const Bitset& activation : train_activations_[p]) {
      CTFL_CHECK(activation.size() ==
                 static_cast<size_t>(net_->num_rules()));
    }
  }
  BuildRuleMasks();
  IndexTrainRefs();
}

ContributionTracer::ContributionTracer(
    const LogicalNet* net, const std::vector<std::vector<uint8_t>>* labels,
    const std::vector<std::vector<Bitset>>* activations, TracerConfig config)
    : net_(net),
      federation_(nullptr),
      config_(config),
      borrowed_labels_(labels),
      borrowed_activations_(activations) {
  CTFL_CHECK(net_ != nullptr && labels != nullptr && activations != nullptr);
  CTFL_CHECK(labels->size() == activations->size());
  for (size_t p = 0; p < activations->size(); ++p) {
    CTFL_CHECK((*labels)[p].size() == (*activations)[p].size());
    for (const Bitset& activation : (*activations)[p]) {
      CTFL_CHECK(activation.size() == static_cast<size_t>(net_->num_rules()));
    }
  }
  BuildRuleMasks();
  IndexTrainRefs();
}

void ContributionTracer::BuildRuleMasks() {
  const int num_rules = net_->num_rules();
  rule_weights_.resize(num_rules);
  class_mask_[0] = Bitset(num_rules);
  class_mask_[1] = Bitset(num_rules);
  for (int j = 0; j < num_rules; ++j) {
    const double w = net_->RuleWeight(j);
    if (w < config_.min_rule_weight) {
      rule_weights_[j] = 0.0;
      continue;
    }
    rule_weights_[j] = w;
    class_mask_[net_->RuleClass(j)].Set(j);
  }
}

void ContributionTracer::IndexTrainRefs() {
  const std::vector<std::vector<Bitset>>& uploads = activations();
  const size_t n = uploads.size();
  for (int c = 0; c < 2; ++c) class_part_offset_[c].assign(n + 1, 0);
  for (size_t p = 0; p < n; ++p) {
    for (size_t i = 0; i < uploads[p].size(); ++i) {
      TrainRef ref{static_cast<int>(p), static_cast<int>(i), &uploads[p][i]};
      const int label = borrowed_labels_ != nullptr
                            ? static_cast<int>((*borrowed_labels_)[p][i])
                            : (*federation_)[p].data.instance(i).label;
      train_by_class_[label].push_back(ref);
    }
    for (int c = 0; c < 2; ++c) {
      class_part_offset_[c][p + 1] = train_by_class_[c].size();
    }
  }
  if (config_.kernel == TraceKernelKind::kBlocked) {
    CTFL_SPAN("ctfl.trace.kernel_pack");
    for (int c = 0; c < 2; ++c) {
      std::vector<const Bitset*> records;
      records.reserve(train_by_class_[c].size());
      for (const TrainRef& ref : train_by_class_[c]) {
        records.push_back(ref.activation);
      }
      class_kernel_[c] = TraceKernel(std::move(records), net_->num_rules());
    }
  }
}

TraceResult ContributionTracer::Trace(const Dataset& test) const {
  Stopwatch watch;
  // Forward pass: label, prediction and raw activation per test instance.
  // Everything downstream of this is a pure function of the forwards and
  // the uploads — TraceForwards — which the streaming scorer re-runs
  // against persisted forwards without the Dataset.
  std::vector<TestForward> forwards(test.size());
  {
    telemetry::Span forward_span("ctfl.trace.forwards");
    for (size_t t = 0; t < test.size(); ++t) {
      const Instance& inst = test.instance(t);
      TestForward& fwd = forwards[t];
      fwd.label = static_cast<uint8_t>(inst.label);
      fwd.predicted = static_cast<uint8_t>(net_->Predict(inst));
      fwd.activation = net_->RuleActivations(inst);
    }
  }
  TraceResult result = TraceForwards(forwards);
  result.tracing_seconds = watch.ElapsedSeconds();
  return result;
}

TraceResult ContributionTracer::TraceForwards(
    const std::vector<TestForward>& forwards) const {
  CTFL_SPAN("ctfl.trace.pass");
  Stopwatch watch;
  const std::vector<std::vector<Bitset>>& uploads = activations();
  const int n = static_cast<int>(uploads.size());
  const int num_rules = net_->num_rules();

  TraceResult result;
  result.num_participants = n;
  result.num_rules = num_rules;
  result.tests.resize(forwards.size());
  result.train_match_correct.resize(n);
  result.train_match_miss.resize(n);
  for (int p = 0; p < n; ++p) {
    result.train_match_correct[p].assign(uploads[p].size(), 0);
    result.train_match_miss[p].assign(uploads[p].size(), 0);
  }
  result.beneficial_rule_freq = Matrix(n, num_rules);
  result.harmful_rule_freq = Matrix(n, num_rules);
  result.uncovered_rule_freq.assign(num_rules, 0.0);

  // ---- Build tracing keys (dedup identical supporting sets). -------------
  std::vector<TraceKey> keys;
  std::unordered_map<size_t, std::vector<size_t>> key_index;  // hash->keys
  size_t correct_total = 0;

  telemetry::Span key_span("ctfl.trace.keys");
  for (size_t t = 0; t < forwards.size(); ++t) {
    const TestForward& fwd = forwards[t];
    const int predicted = fwd.predicted;
    const bool correct = predicted == static_cast<int>(fwd.label);
    if (correct) ++correct_total;

    Bitset support = fwd.activation;
    support &= class_mask_[predicted];

    TestTrace& trace = result.tests[t];
    trace.predicted = predicted;
    trace.correct = correct;
    trace.support_size = static_cast<int>(support.Count());
    trace.related_count.assign(n, 0);

    // Locate or create the key.
    size_t key_id = SIZE_MAX;
    if (config_.use_dedup) {
      const size_t h = support.Hash() * 2 + predicted;
      for (size_t cand : key_index[h]) {
        if (keys[cand].target_class == predicted &&
            keys[cand].support == support) {
          key_id = cand;
          break;
        }
      }
      if (key_id == SIZE_MAX) {
        key_id = keys.size();
        key_index[h].push_back(key_id);
        keys.push_back({});
      }
    } else {
      key_id = keys.size();
      keys.push_back({});
    }
    TraceKey& key = keys[key_id];
    if (key.members.empty()) {
      key.target_class = predicted;
      key.supp_list.reserve(support.Count());
      support.ForEachSetBit([&](size_t j) {
        key.supp_list.emplace_back(static_cast<int>(j), rule_weights_[j]);
        key.weight_sum += rule_weights_[j];
      });
      key.support = std::move(support);
    }
    key.members.push_back(t);
    if (correct) {
      ++key.correct_members;
    } else {
      ++key.miss_members;
    }
  }
  key_span.End();
  result.global_accuracy =
      forwards.empty()
          ? 0.0
          : static_cast<double>(correct_total) / forwards.size();
  result.num_keys = static_cast<int64_t>(keys.size());

  // ---- Optional Max-Miner grouping: per-key candidate prefilter. ---------
  // candidate_refs[k] = indices into train_by_class_[class of key k]; empty
  // optional means "use the full class bucket".
  telemetry::Span grouping_span("ctfl.trace.grouping");
  std::vector<std::vector<int>> candidate_refs(keys.size());
  std::vector<bool> has_prefilter(keys.size(), false);
  if (config_.use_max_miner && !keys.empty()) {
    for (int target = 0; target < 2; ++target) {
      std::vector<size_t> class_keys;
      std::vector<Bitset> supports;
      for (size_t k = 0; k < keys.size(); ++k) {
        if (keys[k].target_class == target && keys[k].weight_sum > 0.0) {
          class_keys.push_back(k);
          supports.push_back(keys[k].support);
        }
      }
      if (supports.size() < config_.grouping.min_instances) continue;
      const std::vector<TestGroup> groups = GroupActivations(
          supports, rule_weights_, config_.tau_w, config_.grouping);
      const auto& bucket = train_by_class_[target];
      for (const TestGroup& group : groups) {
        if (group.theta <= 0.0) continue;  // prefilter would pass everyone
        // Training candidates achieving w(act ∩ F) >= theta.
        std::vector<int> candidates;
        if (config_.kernel == TraceKernelKind::kBlocked) {
          // Kernel path: same theta comparison, phrased as kPlusEpsGe so
          // the exact fallback replays `overlap + kRatioEps >= theta`
          // bit-for-bit. Stats are deliberately discarded — the prefilter
          // is bookkept via tau_w_checks only, keeping the CI invariant
          // records_scanned <= tau_w_checks intact.
          std::vector<std::pair<int, double>> items;
          items.reserve(group.frequent_subset.size());
          for (int item : group.frequent_subset) {
            items.emplace_back(item, rule_weights_[item]);
          }
          const TraceKernel::Support prefilter = TraceKernel::Prepare(
              items, group.theta, TraceKernel::Cmp::kPlusEpsGe, kRatioEps);
          const TraceKernel& kernel = class_kernel_[target];
          std::vector<uint64_t> related(kernel.num_blocks(), 0);
          kernel.Match(prefilter, nullptr, related.data(), nullptr,
                       {config_.isa, config_.trace_threads});
          for (size_t b = 0; b < related.size(); ++b) {
            uint64_t word = related[b];
            while (word != 0) {
              const int lane = std::countr_zero(word);
              word &= word - 1;
              candidates.push_back(static_cast<int>(b * 64) + lane);
            }
          }
        } else {
          for (size_t r = 0; r < bucket.size(); ++r) {
            double overlap = 0.0;
            for (int item : group.frequent_subset) {
              if (bucket[r].activation->Test(item)) {
                overlap += rule_weights_[item];
              }
            }
            if (overlap + kRatioEps >= group.theta) {
              candidates.push_back(static_cast<int>(r));
            }
          }
        }
        for (size_t local : group.members) {
          const size_t k = class_keys[local];
          candidate_refs[k] = candidates;
          has_prefilter[k] = true;
        }
      }
    }
  }

  grouping_span.End();

  // ---- Per-key related-set computation (parallel) + accumulation. --------
  telemetry::Span match_span("ctfl.trace.match");
  struct Accumulator {
    Matrix beneficial;
    Matrix harmful;
    std::vector<std::vector<int>> match_correct;
    std::vector<std::vector<int>> match_miss;
    // Thread-local tracing stats, merged after the join (keeps the hot
    // tau_w loop free of shared atomics).
    int64_t tau_w_checks = 0;
    int64_t related_hits = 0;
    int64_t records_scanned = 0;
    int64_t blocks_pruned = 0;
    int64_t exact_fallbacks = 0;
    // Blocked-kernel per-key scratch (reused across keys to stay
    // allocation-free in the hot loop).
    std::vector<uint64_t> candidate_mask;
    std::vector<uint64_t> related_mask;
    // Legacy-path §IV-B scratch: related-activation counts per
    // (supporting-rule index, participant), reused across keys.
    std::vector<int64_t> rule_part_counts;
  };

  int num_threads = ResolveThreadCount(config_.num_threads);
  num_threads = std::max(1, std::min<int>(num_threads,
                                          static_cast<int>(keys.size())));

  std::vector<Accumulator> accumulators(num_threads);
  for (Accumulator& acc : accumulators) {
    acc.beneficial = Matrix(n, num_rules);
    acc.harmful = Matrix(n, num_rules);
    acc.match_correct.resize(n);
    acc.match_miss.resize(n);
    for (int p = 0; p < n; ++p) {
      acc.match_correct[p].assign(uploads[p].size(), 0);
      acc.match_miss[p].assign(uploads[p].size(), 0);
    }
  }

  auto process_key = [&](size_t k, Accumulator& acc) {
    const TraceKey& key = keys[k];
    if (key.weight_sum <= 0.0) return;  // nothing to match against
    const double threshold = config_.tau_w * key.weight_sum - kRatioEps;
    const auto& bucket = train_by_class_[key.target_class];

    std::vector<int> related_per_participant(n, 0);
    size_t total_related = 0;

    // Shared per-related-record bookkeeping (integer counters only — the
    // §IV-B frequency matrices are accumulated in closed form below, one
    // fused multiply per (participant, rule) cell on both paths).
    auto record_related = [&](const TrainRef& ref) {
      ++acc.related_hits;
      ++related_per_participant[ref.participant];
      ++total_related;
      if (key.correct_members > 0) {
        acc.match_correct[ref.participant][ref.local_index] +=
            key.correct_members;
      }
      if (key.miss_members > 0) {
        acc.match_miss[ref.participant][ref.local_index] +=
            key.miss_members;
      }
    };

    if (config_.kernel == TraceKernelKind::kBlocked) {
      const TraceKernel& kernel = class_kernel_[key.target_class];
      const size_t nb = kernel.num_blocks();
      const uint64_t* cmask = nullptr;
      if (has_prefilter[k]) {
        acc.candidate_mask.assign(nb, 0);
        for (int r : candidate_refs[k]) {
          acc.candidate_mask[static_cast<size_t>(r) / 64] |=
              1ULL << (static_cast<size_t>(r) % 64);
        }
        cmask = acc.candidate_mask.data();
        acc.tau_w_checks += static_cast<int64_t>(candidate_refs[k].size());
      } else {
        acc.tau_w_checks += static_cast<int64_t>(bucket.size());
      }
      const TraceKernel::Support support =
          TraceKernel::Prepare(key.supp_list, threshold);
      if (acc.related_mask.size() < nb) acc.related_mask.resize(nb);
      TraceKernelStats kstats;
      kernel.Match(support, cmask, acc.related_mask.data(), &kstats,
                   {config_.isa, config_.trace_threads});
      acc.records_scanned += kstats.records_scanned;
      acc.blocks_pruned += kstats.blocks_pruned;
      acc.exact_fallbacks += kstats.exact_fallbacks;
      for (size_t b = 0; b < nb; ++b) {
        uint64_t word = acc.related_mask[b];
        while (word != 0) {
          const int lane = std::countr_zero(word);
          word &= word - 1;
          record_related(bucket[b * 64 + static_cast<size_t>(lane)]);
        }
      }
      // Weight-regularized rule activation frequencies (§IV-B) in closed
      // form: within one key every related record of participant p adds
      // the same `weight * members` to cell (p, rule), so the sweep
      // collapses to one fused multiply per cell, with the count taken
      // from masked popcounts of rule-row ∧ related words. Class buckets
      // are participant-contiguous (IndexTrainRefs appends participants
      // in order), so each participant is one [lo, hi) slot range.
      const std::vector<size_t>& offsets =
          class_part_offset_[key.target_class];
      for (const auto& [rule, weight] : key.supp_list) {
        for (int p = 0; p < n; ++p) {
          const size_t lo = offsets[p];
          const size_t hi = offsets[p + 1];
          if (lo == hi) continue;
          const size_t b_lo = lo / 64;
          const size_t b_hi = (hi - 1) / 64;
          uint64_t first =
              kernel.rule_word(rule, b_lo) & acc.related_mask[b_lo];
          first &= ~0ULL << (lo % 64);
          int64_t cnt = 0;
          if (b_lo == b_hi) {
            if (hi % 64 != 0) first &= ~0ULL >> (64 - hi % 64);
            cnt = std::popcount(first);
          } else {
            cnt = std::popcount(first);
            for (size_t b = b_lo + 1; b < b_hi; ++b) {
              cnt += std::popcount(kernel.rule_word(rule, b) &
                                   acc.related_mask[b]);
            }
            uint64_t last =
                kernel.rule_word(rule, b_hi) & acc.related_mask[b_hi];
            if (hi % 64 != 0) last &= ~0ULL >> (64 - hi % 64);
            cnt += std::popcount(last);
          }
          if (cnt == 0) continue;
          if (key.correct_members > 0) {
            acc.beneficial(p, rule) +=
                (weight * key.correct_members) * static_cast<double>(cnt);
          }
          if (key.miss_members > 0) {
            acc.harmful(p, rule) +=
                (weight * key.miss_members) * static_cast<double>(cnt);
          }
        }
      }
    } else {
      // Legacy §IV-B in the same closed form as the blocked path: count
      // related activations per (supporting rule, participant) during the
      // scan, then emit one fused multiply per cell in the identical
      // rule-outer / participant-ascending order — same per-cell value,
      // same add sequence, so the two paths stay bit-identical.
      const size_t num_supp = key.supp_list.size();
      acc.rule_part_counts.assign(num_supp * static_cast<size_t>(n), 0);
      auto check_ref = [&](const TrainRef& ref) {
        ++acc.tau_w_checks;
        double overlap = 0.0;
        for (const auto& [rule, weight] : key.supp_list) {
          if (ref.activation->Test(rule)) overlap += weight;
        }
        if (overlap < threshold) return;
        record_related(ref);
        int64_t* counts = acc.rule_part_counts.data() + ref.participant;
        for (size_t si = 0; si < num_supp; ++si) {
          if (ref.activation->Test(key.supp_list[si].first)) {
            counts[si * static_cast<size_t>(n)] += 1;
          }
        }
      };

      if (has_prefilter[k]) {
        for (int r : candidate_refs[k]) check_ref(bucket[r]);
      } else {
        for (const TrainRef& ref : bucket) check_ref(ref);
      }
      for (size_t si = 0; si < num_supp; ++si) {
        const auto& [rule, weight] = key.supp_list[si];
        for (int p = 0; p < n; ++p) {
          const int64_t cnt =
              acc.rule_part_counts[si * static_cast<size_t>(n) + p];
          if (cnt == 0) continue;
          if (key.correct_members > 0) {
            acc.beneficial(p, rule) +=
                (weight * key.correct_members) * static_cast<double>(cnt);
          }
          if (key.miss_members > 0) {
            acc.harmful(p, rule) +=
                (weight * key.miss_members) * static_cast<double>(cnt);
          }
        }
      }
    }

    for (size_t t : key.members) {
      result.tests[t].related_count = related_per_participant;
      result.tests[t].total_related = total_related;
    }
  };

  if (num_threads == 1 || keys.size() < 2) {
    for (size_t k = 0; k < keys.size(); ++k) process_key(k, accumulators[0]);
  } else {
    ThreadPool pool(num_threads);
    const size_t chunk = (keys.size() + num_threads - 1) / num_threads;
    for (int w = 0; w < num_threads; ++w) {
      const size_t lo = static_cast<size_t>(w) * chunk;
      const size_t hi = std::min(keys.size(), lo + chunk);
      if (lo >= hi) break;
      pool.Submit([&, w, lo, hi] {
        for (size_t k = lo; k < hi; ++k) process_key(k, accumulators[w]);
      });
    }
    pool.Wait();
  }

  // Merge thread-local accumulators.
  for (const Accumulator& acc : accumulators) {
    result.beneficial_rule_freq.Axpy(1.0, acc.beneficial);
    result.harmful_rule_freq.Axpy(1.0, acc.harmful);
    result.tau_w_checks += acc.tau_w_checks;
    result.related_records += acc.related_hits;
    result.records_scanned += acc.records_scanned;
    result.blocks_pruned += acc.blocks_pruned;
    result.exact_fallbacks += acc.exact_fallbacks;
    for (int p = 0; p < n; ++p) {
      for (size_t i = 0; i < acc.match_correct[p].size(); ++i) {
        result.train_match_correct[p][i] += acc.match_correct[p][i];
        result.train_match_miss[p][i] += acc.match_miss[p][i];
      }
    }
  }
  match_span.End();

  // Matched accuracy + uncovered-scenario aggregation.
  size_t matched_correct = 0;
  for (size_t t = 0; t < forwards.size(); ++t) {
    const TestTrace& trace = result.tests[t];
    if (trace.correct && trace.total_related > 0) ++matched_correct;
    if (!trace.correct && trace.total_related == 0) {
      ++result.uncovered_tests;
      // Raw activation retained in the forward record — the network is
      // not run a second time for uncovered tests.
      forwards[t].activation.ForEachSetBit([&](size_t j) {
        result.uncovered_rule_freq[j] += rule_weights_[j];
      });
    }
  }
  result.matched_accuracy =
      forwards.empty()
          ? 0.0
          : static_cast<double>(matched_correct) / forwards.size();
  result.tracing_seconds = watch.ElapsedSeconds();

  // Process-wide tracer metrics (cached after first lookup).
  static telemetry::Counter& pass_counter =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.trace.passes");
  static telemetry::Counter& check_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.trace.tau_w_checks");
  static telemetry::Counter& hit_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.trace.related_records");
  static telemetry::Counter& uncovered_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.trace.uncovered_tests");
  static telemetry::Counter& scanned_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.trace.records_scanned");
  static telemetry::Counter& pruned_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.trace.blocks_pruned");
  static telemetry::Counter& fallback_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.trace.exact_fallbacks");
  static telemetry::Histogram& pass_hist =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "ctfl.trace.pass_us");
  pass_counter.Add(1);
  check_counter.Add(result.tau_w_checks);
  hit_counter.Add(result.related_records);
  uncovered_counter.Add(static_cast<int64_t>(result.uncovered_tests));
  scanned_counter.Add(result.records_scanned);
  pruned_counter.Add(result.blocks_pruned);
  fallback_counter.Add(result.exact_fallbacks);
  pass_hist.Observe(result.tracing_seconds * 1e6);
  return result;
}

}  // namespace ctfl
