#include "ctfl/core/rounds.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

// Avoids divide-by-zero drift on participants with ~zero history.
constexpr double kEmaFloor = 1e-6;

}  // namespace

RoundTracker::RoundTracker(int num_participants, Config config)
    : config_(config), states_(num_participants) {
  CTFL_CHECK(num_participants > 0);
  CTFL_CHECK(config_.ema_alpha > 0.0 && config_.ema_alpha <= 1.0);
}

Result<std::vector<RoundTracker::DriftAlert>> RoundTracker::RecordRound(
    const std::vector<double>& scores) {
  if (static_cast<int>(scores.size()) != num_participants()) {
    return Status::InvalidArgument(
        StrFormat("expected %d scores, got %zu", num_participants(),
                  scores.size()));
  }
  ++round_;
  std::vector<DriftAlert> alerts;
  for (int p = 0; p < num_participants(); ++p) {
    ParticipantState& state = states_[p];
    const double score = scores[p];
    if (state.rounds_seen >= config_.warmup_rounds) {
      const double base = std::max(state.ema, kEmaFloor);
      const double drift = (score - state.ema) / base;
      if (std::abs(drift) >= config_.drift_threshold) {
        alerts.push_back({p, round_, score, state.ema, drift});
      }
    }
    state.cumulative += score;
    state.ema = state.rounds_seen == 0
                    ? score
                    : config_.ema_alpha * score +
                          (1.0 - config_.ema_alpha) * state.ema;
    state.last_score = score;
    ++state.rounds_seen;
  }
  return alerts;
}

std::vector<int> RoundTracker::CumulativeRanking() const {
  std::vector<int> order(states_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return states_[a].cumulative > states_[b].cumulative;
  });
  return order;
}

std::string RoundTracker::Summary() const {
  std::string out = StrFormat(
      "after %d rounds:\nparticipant  cumulative      ema     last\n",
      round_);
  for (size_t p = 0; p < states_.size(); ++p) {
    out += StrFormat("P%-11zu %10.4f %8.4f %8.4f\n", p,
                     states_[p].cumulative, states_[p].ema,
                     states_[p].last_score);
  }
  return out;
}

}  // namespace ctfl
