#ifndef CTFL_CORE_PIPELINE_H_
#define CTFL_CORE_PIPELINE_H_

#include <memory>
#include <string>

#include "ctfl/core/allocation.h"
#include "ctfl/core/loss_tracing.h"
#include "ctfl/core/tracer.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/telemetry/run_report.h"
#include "ctfl/telemetry/run_telemetry.h"
#include "ctfl/valuation/scheme.h"

namespace ctfl {

/// Everything CTFL needs end-to-end: how to train the single global model
/// and how to trace it.
struct CtflConfig {
  LogicalNetConfig net;
  /// True: train the global model with FedAvg across participants (the
  /// paper's setting). False: central training on merged data (useful in
  /// tests and fast ablations; yields the same kind of rule model).
  bool federated = true;
  FedAvgConfig fedavg;
  TrainConfig central;
  TracerConfig tracer;
  /// Minimum related records for macro credit (Eq. 6).
  int macro_delta = 1;
  /// Master thread knob. When >= 0 it overrides every per-component
  /// setting — fedavg.num_threads (client fan-out), fedavg.local /
  /// central num_threads (matrix kernels), tracer.num_threads — and the
  /// process-wide matrix parallelism, so one flag steers the whole run
  /// (0 = hardware concurrency, 1 = fully serial). -1 leaves the
  /// per-component knobs untouched. Scores and parameters are
  /// bit-identical for every value (DESIGN.md §9).
  int num_threads = -1;
  /// When non-empty, RunCtfl persists a contribution bundle (store/) at
  /// this path after allocation: model + rules + activation uploads +
  /// posting index, so later contribution / interpretability queries need
  /// no retraining and no retracing. Failures are recorded in
  /// CtflReport::bundle_status, never fatal to the run.
  std::string bundle_out;
};

/// Output of one CTFL run: the trained global model, the tracing pass, and
/// both allocation schemes — all from a single model training + inference.
struct CtflReport {
  LogicalNet model;
  TraceResult trace;
  std::vector<double> micro_scores;
  std::vector<double> macro_scores;
  double train_seconds = 0.0;
  double trace_seconds = 0.0;
  double test_accuracy = 0.0;
  /// Outcome of the optional bundle emit (OK when bundle_out was empty).
  Status bundle_status;
  /// Bytes written to CtflConfig::bundle_out (0 when not emitted).
  size_t bundle_bytes = 0;
  /// Per-phase timings + rule/tracer stats of this run (per-round FedAvg
  /// timings, per-epoch losses, grafting-step counts, ...).
  telemetry::RunTelemetry telemetry;

  explicit CtflReport(LogicalNet model_in) : model(std::move(model_in)) {}
};

/// Runs the full CTFL pipeline (paper Fig. 1, steps 1-3): train one global
/// rule-based model, trace the test gain per participant, allocate micro
/// and macro credits. A malformed configuration (empty federation, invalid
/// FedAvg knobs such as a negative retry budget) propagates the training
/// Status instead of aborting the process; per-client faults never fail
/// the run — they degrade rounds (DESIGN.md §8).
Result<CtflReport> RunCtfl(const Federation& federation, const Dataset& test,
                           const CtflConfig& config);

/// Digest over the semantic CtflConfig knobs — everything that can change
/// the run's scores (net shape, seeds, rounds/epochs, tau_w, privacy,
/// ...). Thread-count knobs, the trace-kernel selector, verbosity, and
/// output paths are excluded: they never change results (DESIGN.md
/// §9/§10). The failure plan is also excluded — it is fingerprinted
/// separately so a report can name the fault schedule independently of
/// the configuration.
uint64_t CtflConfigDigest(const CtflConfig& config);

/// Assembles the structured run report (DESIGN.md §12) for a finished
/// RunCtfl invocation: run identity (config digest, schema and
/// failure-plan fingerprints mixed into one run fingerprint), data shape,
/// build type, and the full RunTelemetry carried by `report`.
telemetry::RunReport MakeRunReport(const CtflReport& report,
                                   const CtflConfig& config,
                                   const Federation& federation,
                                   const Dataset& test);

/// Adapters exposing CTFL through the ContributionScheme interface so
/// benches iterate one scheme list. The CoalitionUtility passed to
/// Compute() is ignored beyond participant count — CTFL never retrains
/// coalitions; it reads the federation and test set held here.
class CtflScheme : public ContributionScheme {
 public:
  enum class Variant { kMicro, kMacro };

  /// `federation` and `test` must outlive the scheme.
  CtflScheme(const Federation* federation, const Dataset* test,
             CtflConfig config, Variant variant);

  std::string name() const override {
    return variant_ == Variant::kMicro ? "CTFL-micro" : "CTFL-macro";
  }
  Result<ContributionResult> Compute(CoalitionUtility& utility) override;

  /// The full report of the last Compute() call (shared by both variants
  /// when reuse is enabled via SharedReport).
  const CtflReport* last_report() const { return report_.get(); }
  /// Shared handle to the same report, for callers that outlive the
  /// scheme (e.g. bench harnesses consuming RunTelemetry).
  std::shared_ptr<const CtflReport> shared_report() const { return report_; }

 private:
  const Federation* federation_;
  const Dataset* test_;
  CtflConfig config_;
  Variant variant_;
  std::shared_ptr<CtflReport> report_;
};

}  // namespace ctfl

#endif  // CTFL_CORE_PIPELINE_H_
