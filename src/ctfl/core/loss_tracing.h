#ifndef CTFL_CORE_LOSS_TRACING_H_
#define CTFL_CORE_LOSS_TRACING_H_

#include <string>
#include <vector>

#include "ctfl/core/tracer.h"

namespace ctfl {

/// Per-participant loss attribution and label-flip forensics (paper
/// §IV-A "Label-flipped Data"): honest misclassifications rarely align
/// with many training records of the (wrong) predicted class, so a
/// participant whose data keeps matching misclassified tests — while
/// contributing little gain — is a flip suspect.
struct LossReport {
  /// Eq. 5 / Eq. 6 evaluated over misclassified tests.
  std::vector<double> micro_loss;
  std::vector<double> macro_loss;
  /// Gain scores (Eq. 5 over correct tests) for the ratio below.
  std::vector<double> micro_gain;
  /// loss / (gain + loss); near 1 = almost all of this participant's
  /// tracing mass is on the wrong side.
  std::vector<double> suspicion;
  /// Fraction of the participant's records matched on misclassified tests.
  std::vector<double> miss_match_ratio;
  /// Participants whose suspicion exceeded the flag threshold.
  std::vector<int> flagged;
};

struct LossAnalysisConfig {
  int macro_delta = 1;
  /// Flag a participant when suspicion >= this.
  double flag_threshold = 0.5;
  /// ... and its loss score is at least this (guards the 0/0 regime of
  /// participants with no tracing mass at all).
  double min_loss_score = 1e-4;
};

LossReport AnalyzeLoss(const TraceResult& trace,
                       const LossAnalysisConfig& config = {});

std::string FormatLossReport(const LossReport& report);

}  // namespace ctfl

#endif  // CTFL_CORE_LOSS_TRACING_H_
