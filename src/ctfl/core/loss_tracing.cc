#include "ctfl/core/loss_tracing.h"

#include "ctfl/core/allocation.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

LossReport AnalyzeLoss(const TraceResult& trace,
                       const LossAnalysisConfig& config) {
  LossReport report;
  report.micro_loss = MicroAllocation(trace, /*on_correct=*/false);
  report.macro_loss =
      MacroAllocation(trace, config.macro_delta, /*on_correct=*/false);
  report.micro_gain = MicroAllocation(trace, /*on_correct=*/true);

  const int n = trace.num_participants;
  report.suspicion.resize(n);
  report.miss_match_ratio.resize(n);
  for (int p = 0; p < n; ++p) {
    const double gain = report.micro_gain[p];
    const double loss = report.micro_loss[p];
    report.suspicion[p] =
        gain + loss > 0.0 ? loss / (gain + loss) : 0.0;

    const auto& miss = trace.train_match_miss[p];
    size_t matched = 0;
    for (int count : miss) {
      if (count > 0) ++matched;
    }
    report.miss_match_ratio[p] =
        miss.empty() ? 0.0 : static_cast<double>(matched) / miss.size();

    if (report.suspicion[p] >= config.flag_threshold &&
        loss >= config.min_loss_score) {
      report.flagged.push_back(p);
    }
  }
  return report;
}

std::string FormatLossReport(const LossReport& report) {
  std::string out = "participant  gain     loss     suspicion  miss-match\n";
  for (size_t p = 0; p < report.suspicion.size(); ++p) {
    out += StrFormat("P%-10zu %.5f  %.5f  %.3f      %.3f", p,
                     report.micro_gain[p], report.micro_loss[p],
                     report.suspicion[p], report.miss_match_ratio[p]);
    for (int flagged : report.flagged) {
      if (flagged == static_cast<int>(p)) {
        out += "   << FLAGGED";
        break;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ctfl
