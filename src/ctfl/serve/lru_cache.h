#ifndef CTFL_SERVE_LRU_CACHE_H_
#define CTFL_SERVE_LRU_CACHE_H_

// Sharded LRU cache for hot per-test related-record results. Shards cut
// lock contention under concurrent queries: a key hashes to one shard,
// each shard serializes its own recency list behind its own mutex.
// Capacity 0 disables the cache entirely (every lookup misses, nothing is
// stored) so the service can run cacheless without branching at call
// sites. Values are returned by copy — entries may be evicted while a
// caller still holds the result.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ctfl {
namespace serve {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget across all shards (0 disables);
  /// each of `num_shards` shards gets an equal slice, at least 1.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : capacity_(capacity) {
    if (num_shards == 0) num_shards = 1;
    if (capacity > 0) {
      shards_.reserve(num_shards);
      size_t per_shard = (capacity + num_shards - 1) / num_shards;
      for (size_t i = 0; i < num_shards; ++i) {
        shards_.push_back(std::make_unique<Shard>(per_shard));
      }
    }
  }

  std::optional<Value> Get(const Key& key) {
    if (shards_.empty()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  void Put(const Key& key, Value value) {
    if (shards_.empty()) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map[key] = shard.order.begin();
    if (shard.map.size() > shard.capacity) {
      shard.map.erase(shard.order.back().first);
      shard.order.pop_back();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->map.size();
    }
    return total;
  }

  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    explicit Shard(size_t cap) : capacity(cap) {}
    const size_t capacity;
    mutable std::mutex mutex;
    std::list<std::pair<Key, Value>> order;  ///< front = most recent
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[Hash{}(key) % shards_.size()];
  }

  const size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace serve
}  // namespace ctfl

#endif  // CTFL_SERVE_LRU_CACHE_H_
