#ifndef CTFL_SERVE_SERVER_H_
#define CTFL_SERVE_SERVER_H_

// Socket front end of the resident query service. POSIX-only (the rest of
// the serve stack — protocol, service, cache — is portable); on other
// platforms Start() returns Unimplemented. One acceptor thread polls the
// listening socket; each accepted connection is dispatched onto a shared
// util/thread_pool worker, which loops frames until the peer closes or the
// server drains. Shutdown() is graceful: the listener closes first, then
// in-flight connections finish the frame they are parsing (poll timeouts
// bound the wait) before their sockets close.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "ctfl/serve/service.h"
#include "ctfl/util/result.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {
namespace serve {

struct ServerConfig {
  /// Unix-domain socket path. Mutually exclusive with `port`.
  std::string socket_path;
  /// TCP loopback port (0 = kernel-assigned, see Server::port()). Used
  /// when `socket_path` is empty.
  int port = 0;
  /// Connection-handler pool size (<= 0: hardware concurrency).
  int num_threads = 0;
  /// accept(2) backlog.
  int backlog = 64;
  /// Idle timeout per connection, in milliseconds. A connection that
  /// produces no complete frame for this long is closed (counted in
  /// `ctfl.serve.idle_closed`) — otherwise a slow-loris peer that opens a
  /// connection and trickles or withholds bytes pins a pool worker
  /// forever. The clock resets on every complete frame, so a healthy
  /// keep-alive client issuing a request at least this often is never
  /// cut off mid-session. <= 0 disables the timeout.
  int idle_timeout_ms = 5000;
};

/// True when the socket server is compiled in (POSIX).
bool ServerSupported();

class Server {
 public:
  /// `service` must outlive the server.
  Server(QueryService* service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts the acceptor thread. Fails on bind errors
  /// (address in use, bad path) and off-POSIX builds.
  Status Start();

  /// Asks the server to drain: stop accepting, let in-flight frames
  /// finish, close connections. Idempotent; safe from signal-adjacent
  /// contexts (only atomics + one close).
  void Shutdown();

  /// Blocks until the acceptor and every connection handler returned.
  void Wait();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// True once Shutdown() was requested (signal, API, or SHUTDOWN op).
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// Bound TCP port (kernel-assigned when config.port was 0); 0 for
  /// unix-domain servers.
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  QueryService* const service_;
  const ServerConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
};

}  // namespace serve
}  // namespace ctfl

#endif  // CTFL_SERVE_SERVER_H_
