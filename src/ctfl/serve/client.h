#ifndef CTFL_SERVE_CLIENT_H_
#define CTFL_SERVE_CLIENT_H_

// Blocking client of the query-service wire protocol: one connection, one
// in-flight request at a time (Call frames the request, writes it, and
// reads frames until the response with the matching request id arrives).
// Not thread-safe; open one Client per thread for concurrent load.
// POSIX-only, like the server.

#include <cstdint>
#include <string>

#include "ctfl/serve/protocol.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<Client> ConnectUnix(const std::string& socket_path);
  static Result<Client> ConnectTcp(const std::string& host, int port);

  bool connected() const { return fd_ >= 0; }

  /// Sends `request` (assigning a fresh request id when the caller left it
  /// 0) and blocks for the matching response. Transport failures surface
  /// here; server-side failures arrive inside Response::status.
  Result<Response> Call(const Request& request);

  void Close();

 private:
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
};

}  // namespace serve
}  // namespace ctfl

#endif  // CTFL_SERVE_CLIENT_H_
