#include "ctfl/serve/server.h"

#if defined(__unix__) || defined(__APPLE__)
#define CTFL_SERVE_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cstring>
#include <utility>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/util/stopwatch.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace serve {

bool ServerSupported() {
#if defined(CTFL_SERVE_HAS_SOCKETS)
  return true;
#else
  return false;
#endif
}

Server::Server(QueryService* service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

Server::~Server() {
  Shutdown();
  Wait();
}

#if defined(CTFL_SERVE_HAS_SOCKETS)

namespace {

// Polls fd for readability with a short timeout so loops notice drain
// requests. Returns +1 readable, 0 timeout, -1 error/hangup.
int PollReadable(int fd, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = POLLIN;
  p.revents = 0;
  const int rc = poll(&p, 1, timeout_ms);
  if (rc < 0) return errno == EINTR ? 0 : -1;
  if (rc == 0) return 0;
  if (p.revents & (POLLERR | POLLNVAL)) return -1;
  return 1;
}

bool WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = send(fd, data + sent, size - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = send(fd, data + sent, size - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }
  int fd = -1;
  if (!config_.socket_path.empty()) {
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument(
          StrFormat("socket path '%s' exceeds the %zu-byte sun_path limit",
                    config_.socket_path.c_str(), sizeof(addr.sun_path) - 1));
    }
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
    }
    // A stale socket file from a crashed server would make bind fail;
    // unlink first (the path is ours by contract).
    ::unlink(config_.socket_path.c_str());
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status status = Status::IoError(
          StrFormat("bind(%s): %s", config_.socket_path.c_str(),
                    std::strerror(errno)));
      ::close(fd);
      return status;
    }
  } else {
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.port));
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status status = Status::IoError(StrFormat(
          "bind(127.0.0.1:%d): %s", config_.port, std::strerror(errno)));
      ::close(fd);
      return status;
    }
    struct sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) ==
        0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (listen(fd, config_.backlog) < 0) {
    const Status status =
        Status::IoError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  listen_fd_.store(fd, std::memory_order_release);
  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  telemetry::Counter& accepted = telemetry::MetricsRegistry::Global()
                                     .GetCounter("ctfl.serve.connections");
  const int fd = listen_fd_.load(std::memory_order_acquire);
  while (!draining_.load(std::memory_order_acquire)) {
    const int readable = PollReadable(fd, /*timeout_ms=*/100);
    if (readable < 0) break;
    if (readable == 0) continue;
    const int conn = accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    accepted.Add(1);
    pool_->Submit([this, conn] { HandleConnection(conn); });
  }
}

void Server::HandleConnection(int fd) {
  static telemetry::Counter& idle_closed =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.serve.idle_closed");
  FrameDecoder decoder;
  char buf[64 * 1024];
  bool shutdown_requested = false;
  // Slow-loris guard: wall time since the last *complete* frame. Counting
  // poll timeouts instead would miss a peer that trickles one byte per
  // poll interval and never finishes a frame.
  Stopwatch idle_watch;
  while (true) {
    // Pop every buffered frame before reading more.
    std::string payload;
    while (true) {
      Result<bool> next = decoder.Next(&payload);
      if (!next.ok() || (shutdown_requested && decoder.idle())) {
        ::close(fd);
        if (shutdown_requested) Shutdown();
        return;
      }
      if (!*next) break;
      idle_watch.Restart();
      const std::string response =
          service_->HandlePayload(payload, &shutdown_requested);
      Result<std::string> framed = Frame(response);
      if (!framed.ok() || !WriteAll(fd, framed->data(), framed->size())) {
        ::close(fd);
        if (shutdown_requested) Shutdown();
        return;
      }
    }
    if (shutdown_requested) {
      ::close(fd);
      Shutdown();
      return;
    }
    // Drain policy: between frames an idle connection closes immediately;
    // mid-frame we keep reading so the peer gets its response.
    if (draining_.load(std::memory_order_acquire) && decoder.idle()) {
      ::close(fd);
      return;
    }
    if (config_.idle_timeout_ms > 0 &&
        idle_watch.ElapsedMillis() >=
            static_cast<double>(config_.idle_timeout_ms)) {
      idle_closed.Add(1);
      ::close(fd);
      return;
    }
    const int readable = PollReadable(fd, /*timeout_ms=*/100);
    if (readable < 0) {
      ::close(fd);
      return;
    }
    if (readable == 0) continue;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return;
    }
    decoder.Append(buf, static_cast<size_t>(n));
  }
}

void Server::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  // Closing the listener wakes the acceptor poll immediately.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

void Server::Wait() {
  if (!running_.load(std::memory_order_acquire)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (pool_ != nullptr) pool_->Wait();
  pool_.reset();
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
  running_.store(false, std::memory_order_release);
}

#else  // !CTFL_SERVE_HAS_SOCKETS

Status Server::Start() {
  return Status::Unimplemented(
      "socket server requires a POSIX platform (protocol and service "
      "layers remain available)");
}

void Server::AcceptLoop() {}
void Server::HandleConnection(int) {}
void Server::Shutdown() {}
void Server::Wait() {}

#endif  // CTFL_SERVE_HAS_SOCKETS

}  // namespace serve
}  // namespace ctfl
