#ifndef CTFL_SERVE_SERVICE_H_
#define CTFL_SERVE_SERVICE_H_

// Transport-independent request handler of the resident query service:
// owns the immutable QueryEngine (loaded once, mmap-backed by default) and
// a sharded LRU of hot per-test related lookups, and maps protocol
// requests to engine calls. Handle() is safe to call from any number of
// threads concurrently — the engine is read-only after construction, the
// cache shards its locks, and all telemetry is atomic.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "ctfl/serve/lru_cache.h"
#include "ctfl/serve/protocol.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace serve {

struct ServiceConfig {
  /// Total cached RELATED_FOR_TEST results across shards (0 disables).
  size_t lru_capacity = 256;
  size_t lru_shards = 8;
  /// Container bytes of the bundle backing the engine (reported by STATS).
  uint64_t bundle_bytes = 0;
  /// Trace-kernel shard threads applied to every query (a server-local
  /// execution knob, not a wire field; results are bit-identical at any
  /// count, so it never enters the RELATED_FOR_TEST cache key).
  int trace_threads = 1;
  /// Optional record/replay hook (src/ctfl/replay/): invoked once per
  /// handled request with the decoded request and the response about to be
  /// returned, after all counters were bumped. Called from whichever thread
  /// runs Handle() — the tap must be thread-safe. Empty = no recording.
  std::function<void(const Request&, const Response&)> request_tap;
  /// Streaming mode: reports how many delta-log rounds the host process
  /// has folded into its live scores (STATS `rounds_folded`, protocol
  /// v3). Called from whichever thread runs Handle() — must be
  /// thread-safe (typically a relaxed atomic load). Empty = 0 (static
  /// bundle).
  std::function<uint64_t()> rounds_folded_fn;
};

class QueryService {
 public:
  QueryService(store::QueryEngine engine, ServiceConfig config = {});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  const store::QueryEngine& engine() const { return engine_; }

  /// Answers one decoded request. Never fails at this layer: server-side
  /// errors (bad test index, ...) travel inside Response::status.
  Response Handle(const Request& request);

  /// Decodes one frame payload, handles it, and returns the encoded
  /// response payload. Malformed payloads yield an encoded error response
  /// (echoing whatever header bytes were readable) rather than a Status —
  /// the connection stays usable. `shutdown_requested` is set to true when
  /// the frame was a SHUTDOWN op (the response must still be written back
  /// before the server drains).
  std::string HandlePayload(std::string_view payload,
                            bool* shutdown_requested);

  /// Point-in-time service counters + bundle shape.
  ServerStats Stats() const;

 private:
  struct RelatedKey {
    uint64_t test_index = 0;
    uint64_t tau_w_bits = 0;
    bool use_index = true;
    uint64_t max_records = 0;
    uint8_t kernel = 0;
    bool operator==(const RelatedKey& o) const {
      return test_index == o.test_index && tau_w_bits == o.tau_w_bits &&
             use_index == o.use_index && max_records == o.max_records &&
             kernel == o.kernel;
    }
  };
  struct RelatedKeyHash {
    size_t operator()(const RelatedKey& k) const;
  };

  Response HandleRelated(const Request& request);
  Response HandleRelatedForTest(const Request& request);
  Response HandleEvaluate(const Request& request);
  void FillStats(Response* response) const;

  store::QueryEngine engine_;
  const ServiceConfig config_;
  ShardedLruCache<RelatedKey, store::RelatedResult, RelatedKeyHash> cache_;
  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> errors_total_{0};
  std::atomic<uint64_t> related_requests_{0};
  std::atomic<uint64_t> related_for_test_requests_{0};
  std::atomic<uint64_t> evaluate_requests_{0};
  /// Exact-fallback lanes summed over every lookup (cache hits replay the
  /// cached result's count — the client-visible totals stay additive).
  std::atomic<uint64_t> exact_fallbacks_{0};
};

}  // namespace serve
}  // namespace ctfl

#endif  // CTFL_SERVE_SERVICE_H_
