#ifndef CTFL_SERVE_RENDER_H_
#define CTFL_SERVE_RENDER_H_

// Canonical text rendering of query results, shared by the one-shot CLI
// (`ctfl_cli query`), its batch mode, and the query-service client. Both
// front ends print these exact strings, so a served response renders
// byte-identically to the one-shot CLI over the same bundle — the CI
// smoke test diffs the two outputs verbatim.

#include <string>
#include <vector>

#include "ctfl/kernel/trace_kernel.h"
#include "ctfl/store/query_engine.h"

namespace ctfl {
namespace serve {

/// The evaluation block of `ctfl_cli query`: the "scores at tau_w=..."
/// table, the reproduction check against the originating run (printed only
/// when the evaluated parameters equal the originating ones and origin
/// scores exist), the accuracy/cost lines, uncovered scenarios, and the
/// per-participant interpretability summaries. `kernel` names the Eq. 4
/// engine the evaluation ran with.
std::string RenderEvaluation(const store::QueryReport& report,
                             TraceKernelKind kernel, double origin_tau_w,
                             int origin_delta,
                             const std::vector<double>& origin_micro,
                             const std::vector<double>& origin_macro);

/// "\nrelated-record lookups (...):\n" header.
std::string RenderRelatedHeader(bool use_index);

/// One "instance N: predicted=..." line plus its materialized record refs.
std::string RenderRelatedLookup(size_t index,
                                const store::RelatedResult& related,
                                const std::vector<std::string>& names);

}  // namespace serve
}  // namespace ctfl

#endif  // CTFL_SERVE_RENDER_H_
