#include "ctfl/serve/render.h"

#include "ctfl/util/string_util.h"

namespace ctfl {
namespace serve {
namespace {

void AppendRuleStats(const char* header,
                     const std::vector<store::RuleStat>& stats,
                     std::string* out) {
  if (stats.empty()) return;
  out->append(StrFormat("  %s\n", header));
  for (const store::RuleStat& stat : stats) {
    out->append(StrFormat("    r%-4d f=%-10.4f %s\n", stat.rule,
                          stat.frequency, stat.text.c_str()));
  }
}

}  // namespace

std::string RenderEvaluation(const store::QueryReport& report,
                             TraceKernelKind kernel, double origin_tau_w,
                             int origin_delta,
                             const std::vector<double>& origin_micro,
                             const std::vector<double>& origin_macro) {
  std::string out;
  out.append(
      StrFormat("scores at tau_w=%.4f delta=%d (no retraining, no "
                "retracing):\n",
                report.tau_w, report.delta));
  out.append("participant        records    micro     macro\n");
  for (size_t p = 0; p < report.participants.size(); ++p) {
    out.append(StrFormat("%-17s %8zu   %.6f  %.6f\n",
                         report.participants[p].name.c_str(),
                         report.participants[p].data_size, report.micro[p],
                         report.macro[p]));
  }
  const bool origin_params =
      report.tau_w == origin_tau_w && report.delta == origin_delta;
  if (origin_params && !origin_micro.empty()) {
    bool identical = origin_macro.size() == report.macro.size();
    for (size_t p = 0; identical && p < report.micro.size(); ++p) {
      identical = origin_micro[p] == report.micro[p] &&
                  origin_macro[p] == report.macro[p];
    }
    out.append(StrFormat("reproduction vs originating run: %s\n",
                         identical ? "bit-identical" : "MISMATCH"));
  }
  out.append(StrFormat(
      "\nglobal accuracy %.4f, matched %.4f; %zu uncovered tests\n"
      "lookup cost: %lld keys, %lld tau_w checks, %lld postings scanned, "
      "%lld candidates pruned\n"
      "trace kernel (%s): %lld records scanned, %lld blocks pruned, "
      "%lld exact fallbacks\n",
      report.global_accuracy, report.matched_accuracy, report.uncovered_tests,
      static_cast<long long>(report.keys),
      static_cast<long long>(report.tau_w_checks),
      static_cast<long long>(report.postings_scanned),
      static_cast<long long>(report.candidates_pruned),
      TraceKernelKindName(kernel),
      static_cast<long long>(report.records_scanned),
      static_cast<long long>(report.blocks_pruned),
      static_cast<long long>(report.exact_fallbacks)));
  AppendRuleStats("uncovered scenarios (collect data here):",
                  report.uncovered_rules, &out);
  for (const store::ParticipantSummary& summary : report.participants) {
    out.append(StrFormat("\n%s (%zu records, useless ratio %.3f)\n",
                         summary.name.c_str(), summary.data_size,
                         summary.useless_ratio));
    AppendRuleStats("beneficial rules:", summary.beneficial, &out);
    AppendRuleStats("harmful rules:", summary.harmful, &out);
  }
  return out;
}

std::string RenderRelatedHeader(bool use_index) {
  return StrFormat("\nrelated-record lookups (%s):\n",
                   use_index ? "posting-list prefilter" : "linear scan");
}

std::string RenderRelatedLookup(size_t index,
                                const store::RelatedResult& related,
                                const std::vector<std::string>& names) {
  std::string out = StrFormat(
      "instance %zu: predicted=%d support=%d related=%zu "
      "(checked %lld of %lld, pruned %lld, exact fallbacks %lld)\n",
      index, related.predicted, related.support_size, related.total_related,
      static_cast<long long>(related.tau_w_checks),
      static_cast<long long>(related.bucket_size),
      static_cast<long long>(related.candidates_pruned),
      static_cast<long long>(related.exact_fallbacks));
  for (const store::RecordRef& ref : related.records) {
    const std::string name =
        ref.participant >= 0 && ref.participant < static_cast<int>(names.size())
            ? names[ref.participant]
            : StrFormat("P%d", ref.participant);
    out.append(StrFormat("    %s record %d\n", name.c_str(),
                         ref.local_index));
  }
  return out;
}

}  // namespace serve
}  // namespace ctfl
