#include "ctfl/serve/client.h"

#if defined(__unix__) || defined(__APPLE__)
#define CTFL_SERVE_HAS_SOCKETS 1
#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include <cstring>
#include <utility>

#include "ctfl/util/string_util.h"

namespace ctfl {
namespace serve {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      next_request_id_(other.next_request_id_),
      decoder_(std::move(other.decoder_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_request_id_ = other.next_request_id_;
    decoder_ = std::move(other.decoder_);
    other.fd_ = -1;
  }
  return *this;
}

#if defined(CTFL_SERVE_HAS_SOCKETS)

Result<Client> Client::ConnectUnix(const std::string& socket_path) {
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path '%s' exceeds the %zu-byte sun_path limit",
                  socket_path.c_str(), sizeof(addr.sun_path) - 1));
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  if (connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    const Status status = Status::IoError(StrFormat(
        "connect(%s): %s", socket_path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Result<Client> Client::ConnectTcp(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("'%s' is not an IPv4 address", host.c_str()));
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(StrFormat("socket: %s", std::strerror(errno)));
  }
  if (connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    const Status status = Status::IoError(StrFormat(
        "connect(%s:%d): %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  Client client;
  client.fd_ = fd;
  return client;
}

Result<Response> Client::Call(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  Request to_send = request;
  if (to_send.request_id == 0) to_send.request_id = next_request_id_++;
  CTFL_ASSIGN_OR_RETURN(std::string framed, Frame(EncodeRequest(to_send)));
  size_t sent = 0;
  while (sent < framed.size()) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n =
        send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = send(fd_, framed.data() + sent, framed.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  char buf[64 * 1024];
  while (true) {
    std::string payload;
    while (true) {
      CTFL_ASSIGN_OR_RETURN(bool have, decoder_.Next(&payload));
      if (!have) break;
      CTFL_ASSIGN_OR_RETURN(Response response, DecodeResponse(payload));
      if (response.request_id == to_send.request_id) return response;
      // A response to a request this client never sent (or an unmatched
      // error echo) — skip it and keep reading.
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StrFormat("recv: %s", std::strerror(errno)));
    }
    if (n == 0) {
      return Status::IoError("server closed the connection mid-call");
    }
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else  // !CTFL_SERVE_HAS_SOCKETS

Result<Client> Client::ConnectUnix(const std::string&) {
  return Status::Unimplemented("socket client requires a POSIX platform");
}

Result<Client> Client::ConnectTcp(const std::string&, int) {
  return Status::Unimplemented("socket client requires a POSIX platform");
}

Result<Response> Client::Call(const Request&) {
  return Status::FailedPrecondition("client is not connected");
}

void Client::Close() { fd_ = -1; }

#endif  // CTFL_SERVE_HAS_SOCKETS

}  // namespace serve
}  // namespace ctfl
