#include "ctfl/serve/service.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace serve {
namespace {

telemetry::Counter& RequestCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.serve.requests");
  return c;
}

telemetry::Counter& ErrorCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter("ctfl.serve.errors");
  return c;
}

telemetry::Counter& CacheHitCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.serve.cache_hits");
  return c;
}

telemetry::Counter& CacheMissCounter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.serve.cache_misses");
  return c;
}

telemetry::Histogram& LatencyHistogram() {
  static telemetry::Histogram& h =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "ctfl.serve.latency_us");
  return h;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

size_t QueryService::RelatedKeyHash::operator()(const RelatedKey& k) const {
  // FNV-1a over the packed fields; shard + bucket dispersal only.
  uint64_t h = 1469598103934665603ull;
  const uint64_t fields[] = {k.test_index, k.tau_w_bits,
                             k.use_index ? 1ull : 0ull, k.max_records,
                             k.kernel};
  for (uint64_t f : fields) {
    for (int i = 0; i < 8; ++i) {
      h ^= (f >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return static_cast<size_t>(h);
}

QueryService::QueryService(store::QueryEngine engine, ServiceConfig config)
    : engine_(std::move(engine)),
      config_(config),
      cache_(config.lru_capacity, config.lru_shards) {}

Response QueryService::Handle(const Request& request) {
  CTFL_SPAN("ctfl.serve.request");
  const auto start = std::chrono::steady_clock::now();
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  RequestCounter().Add(1);

  Response response;
  response.op = request.op;
  response.request_id = request.request_id;
  switch (request.op) {
    case Op::kRelated:
      response = HandleRelated(request);
      break;
    case Op::kRelatedForTest:
      response = HandleRelatedForTest(request);
      break;
    case Op::kEvaluate:
      response = HandleEvaluate(request);
      break;
    case Op::kStats:
    case Op::kShutdown:
      FillStats(&response);
      break;
  }
  if (!response.status.ok()) {
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    ErrorCounter().Add(1);
  }
  const double micros =
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count();
  LatencyHistogram().Observe(micros);
  if (config_.request_tap) config_.request_tap(request, response);
  return response;
}

Response QueryService::HandleRelated(const Request& request) {
  Response response;
  response.op = request.op;
  response.request_id = request.request_id;
  related_requests_.fetch_add(1, std::memory_order_relaxed);
  const size_t want =
      engine_.bundle().schema
          ? static_cast<size_t>(engine_.bundle().schema->num_features())
          : 0;
  if (request.related.instance.values.size() != want) {
    response.status = Status::InvalidArgument(
        StrFormat("RELATED instance has %zu values, schema has %zu features",
                  request.related.instance.values.size(), want));
    return response;
  }
  store::QueryOptions options = request.related.options;
  options.trace_threads = config_.trace_threads;
  response.related = engine_.Related(request.related.instance, options);
  exact_fallbacks_.fetch_add(
      static_cast<uint64_t>(response.related.exact_fallbacks),
      std::memory_order_relaxed);
  return response;
}

Response QueryService::HandleRelatedForTest(const Request& request) {
  Response response;
  response.op = request.op;
  response.request_id = request.request_id;
  related_for_test_requests_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t test_index = request.related_for_test.test_index;
  if (test_index >= engine_.bundle().tests.size()) {
    response.status = Status::OutOfRange(
        StrFormat("RELATED_FOR_TEST index %llu out of range (bundle has "
                  "%zu tests)",
                  static_cast<unsigned long long>(test_index),
                  engine_.bundle().tests.size()));
    return response;
  }
  const store::QueryOptions& options = request.related_for_test.options;
  // Normalize the tau_w default so "use the origin threshold" and an
  // explicit origin-threshold request share one cache entry.
  const double tau_w =
      options.tau_w < 0.0 ? engine_.origin_tau_w() : options.tau_w;
  RelatedKey key;
  key.test_index = test_index;
  key.tau_w_bits = DoubleBits(tau_w);
  key.use_index = options.use_index;
  key.max_records = options.max_records;
  key.kernel = static_cast<uint8_t>(options.kernel);
  if (auto cached = cache_.Get(key)) {
    CacheHitCounter().Add(1);
    response.related = *std::move(cached);
  } else {
    CacheMissCounter().Add(1);
    store::QueryOptions effective = options;
    effective.trace_threads = config_.trace_threads;
    response.related =
        engine_.RelatedForTest(static_cast<size_t>(test_index), effective);
    cache_.Put(key, response.related);
  }
  // Cache hits replay the cached lookup's count: the STATS total stays a
  // per-request sum, independent of cache state.
  exact_fallbacks_.fetch_add(
      static_cast<uint64_t>(response.related.exact_fallbacks),
      std::memory_order_relaxed);
  return response;
}

Response QueryService::HandleEvaluate(const Request& request) {
  Response response;
  response.op = request.op;
  response.request_id = request.request_id;
  evaluate_requests_.fetch_add(1, std::memory_order_relaxed);
  store::EvalOptions eval = request.evaluate.options;
  eval.trace_threads = config_.trace_threads;
  response.report = engine_.Evaluate(eval);
  exact_fallbacks_.fetch_add(
      static_cast<uint64_t>(response.report.exact_fallbacks),
      std::memory_order_relaxed);
  response.origin_tau_w = engine_.origin_tau_w();
  response.origin_delta = engine_.origin_delta();
  response.origin_micro = engine_.bundle().meta.micro_scores;
  response.origin_macro = engine_.bundle().meta.macro_scores;
  return response;
}

void QueryService::FillStats(Response* response) const {
  response->stats = Stats();
}

std::string QueryService::HandlePayload(std::string_view payload,
                                        bool* shutdown_requested) {
  Result<Request> request = DecodeRequest(payload);
  if (!request.ok()) {
    requests_total_.fetch_add(1, std::memory_order_relaxed);
    errors_total_.fetch_add(1, std::memory_order_relaxed);
    RequestCounter().Add(1);
    ErrorCounter().Add(1);
    // Echo whatever header survived so a pipelining client can still match
    // the error to its request.
    Response error;
    if (payload.size() >= 10) {
      const uint8_t op_byte = static_cast<uint8_t>(payload[1]);
      if (op_byte >= static_cast<uint8_t>(Op::kRelated) &&
          op_byte <= static_cast<uint8_t>(Op::kShutdown)) {
        error.op = static_cast<Op>(op_byte);
      }
      uint64_t id = 0;
      for (int i = 0; i < 8; ++i) {
        id |= static_cast<uint64_t>(static_cast<uint8_t>(payload[2 + i]))
              << (8 * i);
      }
      error.request_id = id;
    }
    error.status = request.status();
    return EncodeResponse(error);
  }
  if (request->op == Op::kShutdown && shutdown_requested != nullptr) {
    *shutdown_requested = true;
  }
  return EncodeResponse(Handle(*request));
}

ServerStats QueryService::Stats() const {
  ServerStats stats;
  stats.requests_total = requests_total_.load(std::memory_order_relaxed);
  stats.errors_total = errors_total_.load(std::memory_order_relaxed);
  stats.related_requests = related_requests_.load(std::memory_order_relaxed);
  stats.related_for_test_requests =
      related_for_test_requests_.load(std::memory_order_relaxed);
  stats.evaluate_requests =
      evaluate_requests_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.bundle_bytes = config_.bundle_bytes;
  stats.num_participants =
      static_cast<uint32_t>(engine_.num_participants());
  stats.num_rules = static_cast<uint32_t>(engine_.bundle().num_rules());
  stats.train_records = engine_.bundle().total_train_records();
  stats.test_records = engine_.bundle().tests.size();
  stats.origin_tau_w = engine_.origin_tau_w();
  stats.origin_delta = engine_.origin_delta();
  stats.exact_fallbacks = exact_fallbacks_.load(std::memory_order_relaxed);
  stats.trace_isa = TraceIsaName(CurrentTraceIsa());
  stats.participant_names = engine_.bundle().meta.participant_names;
  stats.rounds_folded =
      config_.rounds_folded_fn ? config_.rounds_folded_fn() : 0;
  return stats;
}

}  // namespace serve
}  // namespace ctfl
