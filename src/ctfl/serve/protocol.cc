#include "ctfl/serve/protocol.h"

#include <utility>

#include "ctfl/util/string_util.h"
#include "ctfl/util/wire.h"

namespace ctfl {
namespace serve {
namespace {

constexpr char kContext[] = "serve frame";

// Status codes travel as one byte; the mapping must stay stable across
// protocol versions (append-only).
uint8_t EncodeStatusCode(StatusCode code) { return static_cast<uint8_t>(code); }

StatusCode DecodeStatusCode(uint8_t byte) {
  if (byte > static_cast<uint8_t>(StatusCode::kIoError)) {
    return StatusCode::kInternal;
  }
  return static_cast<StatusCode>(byte);
}

bool ValidOp(uint8_t byte) {
  return byte >= static_cast<uint8_t>(Op::kRelated) &&
         byte <= static_cast<uint8_t>(Op::kShutdown);
}

void EncodeQueryOptions(const store::QueryOptions& options, wire::Writer* w) {
  w->F64(options.tau_w);
  w->U8(options.use_index ? 1 : 0);
  w->U64(options.max_records);
  w->U8(static_cast<uint8_t>(options.kernel));
}

Status DecodeQueryOptions(wire::Reader* r, store::QueryOptions* options) {
  uint8_t use_index = 0;
  uint64_t max_records = 0;
  uint8_t kernel = 0;
  CTFL_RETURN_IF_ERROR(r->F64(&options->tau_w));
  CTFL_RETURN_IF_ERROR(r->U8(&use_index));
  CTFL_RETURN_IF_ERROR(r->U64(&max_records));
  CTFL_RETURN_IF_ERROR(r->U8(&kernel));
  if (kernel > static_cast<uint8_t>(TraceKernelKind::kBlocked)) {
    return Status::InvalidArgument(
        StrFormat("serve frame has unknown trace kernel %u", kernel));
  }
  options->use_index = use_index != 0;
  options->max_records = static_cast<size_t>(max_records);
  options->kernel = static_cast<TraceKernelKind>(kernel);
  return Status::OK();
}

void EncodeInstance(const Instance& instance, wire::Writer* w) {
  w->U32(static_cast<uint32_t>(instance.values.size()));
  for (double v : instance.values) w->F64(v);
  w->U8(static_cast<uint8_t>(instance.label));
}

Status DecodeInstance(wire::Reader* r, Instance* instance) {
  uint32_t count = 0;
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  instance->values.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    CTFL_RETURN_IF_ERROR(r->F64(&instance->values[i]));
  }
  uint8_t label = 0;
  CTFL_RETURN_IF_ERROR(r->U8(&label));
  instance->label = label;
  return Status::OK();
}

void EncodeDoubles(const std::vector<double>& values, wire::Writer* w) {
  w->U32(static_cast<uint32_t>(values.size()));
  for (double v : values) w->F64(v);
}

Status DecodeDoubles(wire::Reader* r, std::vector<double>* values) {
  uint32_t count = 0;
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  values->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    CTFL_RETURN_IF_ERROR(r->F64(&(*values)[i]));
  }
  return Status::OK();
}

void EncodeRelatedResult(const store::RelatedResult& related,
                         wire::Writer* w) {
  w->U32(static_cast<uint32_t>(related.predicted));
  w->U32(static_cast<uint32_t>(related.support_size));
  w->F64(related.support_weight);
  w->U32(static_cast<uint32_t>(related.related_count.size()));
  for (int c : related.related_count) w->U32(static_cast<uint32_t>(c));
  w->U64(related.total_related);
  w->U32(static_cast<uint32_t>(related.records.size()));
  for (const store::RecordRef& ref : related.records) {
    w->U32(static_cast<uint32_t>(ref.participant));
    w->U32(static_cast<uint32_t>(ref.local_index));
  }
  w->I64(related.bucket_size);
  w->I64(related.tau_w_checks);
  w->I64(related.postings_scanned);
  w->I64(related.candidates_pruned);
  w->I64(related.records_scanned);
  w->I64(related.blocks_pruned);
  w->I64(related.exact_fallbacks);
}

Status DecodeRelatedResult(wire::Reader* r, store::RelatedResult* related) {
  uint32_t predicted = 0, support_size = 0, count = 0;
  CTFL_RETURN_IF_ERROR(r->U32(&predicted));
  CTFL_RETURN_IF_ERROR(r->U32(&support_size));
  related->predicted = static_cast<int>(predicted);
  related->support_size = static_cast<int>(support_size);
  CTFL_RETURN_IF_ERROR(r->F64(&related->support_weight));
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  related->related_count.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t c = 0;
    CTFL_RETURN_IF_ERROR(r->U32(&c));
    related->related_count[i] = static_cast<int>(c);
  }
  uint64_t total = 0;
  CTFL_RETURN_IF_ERROR(r->U64(&total));
  related->total_related = static_cast<size_t>(total);
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  related->records.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t participant = 0, local = 0;
    CTFL_RETURN_IF_ERROR(r->U32(&participant));
    CTFL_RETURN_IF_ERROR(r->U32(&local));
    related->records[i].participant = static_cast<int>(participant);
    related->records[i].local_index = static_cast<int>(local);
  }
  CTFL_RETURN_IF_ERROR(r->I64(&related->bucket_size));
  CTFL_RETURN_IF_ERROR(r->I64(&related->tau_w_checks));
  CTFL_RETURN_IF_ERROR(r->I64(&related->postings_scanned));
  CTFL_RETURN_IF_ERROR(r->I64(&related->candidates_pruned));
  CTFL_RETURN_IF_ERROR(r->I64(&related->records_scanned));
  CTFL_RETURN_IF_ERROR(r->I64(&related->blocks_pruned));
  CTFL_RETURN_IF_ERROR(r->I64(&related->exact_fallbacks));
  return Status::OK();
}

void EncodeRuleStats(const std::vector<store::RuleStat>& stats,
                     wire::Writer* w) {
  w->U32(static_cast<uint32_t>(stats.size()));
  for (const store::RuleStat& s : stats) {
    w->U32(static_cast<uint32_t>(s.rule));
    w->F64(s.frequency);
    w->Str(s.text);
  }
}

Status DecodeRuleStats(wire::Reader* r, std::vector<store::RuleStat>* stats) {
  uint32_t count = 0;
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  stats->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t rule = 0;
    CTFL_RETURN_IF_ERROR(r->U32(&rule));
    (*stats)[i].rule = static_cast<int>(rule);
    CTFL_RETURN_IF_ERROR(r->F64(&(*stats)[i].frequency));
    CTFL_RETURN_IF_ERROR(r->Str(&(*stats)[i].text));
  }
  return Status::OK();
}

void EncodeReport(const store::QueryReport& report, wire::Writer* w) {
  w->F64(report.tau_w);
  w->U32(static_cast<uint32_t>(report.delta));
  EncodeDoubles(report.micro, w);
  EncodeDoubles(report.macro, w);
  w->F64(report.global_accuracy);
  w->F64(report.matched_accuracy);
  w->U64(report.uncovered_tests);
  EncodeRuleStats(report.uncovered_rules, w);
  w->U32(static_cast<uint32_t>(report.participants.size()));
  for (const store::ParticipantSummary& p : report.participants) {
    w->U32(static_cast<uint32_t>(p.participant));
    w->Str(p.name);
    w->U64(p.data_size);
    EncodeRuleStats(p.beneficial, w);
    EncodeRuleStats(p.harmful, w);
    w->F64(p.useless_ratio);
  }
  w->I64(report.keys);
  w->I64(report.tau_w_checks);
  w->I64(report.postings_scanned);
  w->I64(report.candidates_pruned);
  w->I64(report.records_scanned);
  w->I64(report.blocks_pruned);
  w->I64(report.exact_fallbacks);
}

Status DecodeReport(wire::Reader* r, store::QueryReport* report) {
  uint32_t delta = 0, count = 0;
  CTFL_RETURN_IF_ERROR(r->F64(&report->tau_w));
  CTFL_RETURN_IF_ERROR(r->U32(&delta));
  report->delta = static_cast<int>(delta);
  CTFL_RETURN_IF_ERROR(DecodeDoubles(r, &report->micro));
  CTFL_RETURN_IF_ERROR(DecodeDoubles(r, &report->macro));
  CTFL_RETURN_IF_ERROR(r->F64(&report->global_accuracy));
  CTFL_RETURN_IF_ERROR(r->F64(&report->matched_accuracy));
  uint64_t uncovered = 0;
  CTFL_RETURN_IF_ERROR(r->U64(&uncovered));
  report->uncovered_tests = static_cast<size_t>(uncovered);
  CTFL_RETURN_IF_ERROR(DecodeRuleStats(r, &report->uncovered_rules));
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  report->participants.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    store::ParticipantSummary& p = report->participants[i];
    uint32_t participant = 0;
    uint64_t data_size = 0;
    CTFL_RETURN_IF_ERROR(r->U32(&participant));
    p.participant = static_cast<int>(participant);
    CTFL_RETURN_IF_ERROR(r->Str(&p.name));
    CTFL_RETURN_IF_ERROR(r->U64(&data_size));
    p.data_size = static_cast<size_t>(data_size);
    CTFL_RETURN_IF_ERROR(DecodeRuleStats(r, &p.beneficial));
    CTFL_RETURN_IF_ERROR(DecodeRuleStats(r, &p.harmful));
    CTFL_RETURN_IF_ERROR(r->F64(&p.useless_ratio));
  }
  CTFL_RETURN_IF_ERROR(r->I64(&report->keys));
  CTFL_RETURN_IF_ERROR(r->I64(&report->tau_w_checks));
  CTFL_RETURN_IF_ERROR(r->I64(&report->postings_scanned));
  CTFL_RETURN_IF_ERROR(r->I64(&report->candidates_pruned));
  CTFL_RETURN_IF_ERROR(r->I64(&report->records_scanned));
  CTFL_RETURN_IF_ERROR(r->I64(&report->blocks_pruned));
  CTFL_RETURN_IF_ERROR(r->I64(&report->exact_fallbacks));
  return Status::OK();
}

void EncodeStats(const ServerStats& stats, wire::Writer* w) {
  w->U64(stats.requests_total);
  w->U64(stats.errors_total);
  w->U64(stats.related_requests);
  w->U64(stats.related_for_test_requests);
  w->U64(stats.evaluate_requests);
  w->U64(stats.cache_hits);
  w->U64(stats.cache_misses);
  w->U64(stats.bundle_bytes);
  w->U32(stats.num_participants);
  w->U32(stats.num_rules);
  w->U64(stats.train_records);
  w->U64(stats.test_records);
  w->F64(stats.origin_tau_w);
  w->U32(static_cast<uint32_t>(stats.origin_delta));
  w->U64(stats.exact_fallbacks);
  w->Str(stats.trace_isa);
  w->U32(static_cast<uint32_t>(stats.participant_names.size()));
  for (const std::string& name : stats.participant_names) w->Str(name);
  w->U64(stats.rounds_folded);  // v3
}

Status DecodeStats(wire::Reader* r, ServerStats* stats) {
  CTFL_RETURN_IF_ERROR(r->U64(&stats->requests_total));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->errors_total));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->related_requests));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->related_for_test_requests));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->evaluate_requests));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->cache_hits));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->cache_misses));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->bundle_bytes));
  CTFL_RETURN_IF_ERROR(r->U32(&stats->num_participants));
  CTFL_RETURN_IF_ERROR(r->U32(&stats->num_rules));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->train_records));
  CTFL_RETURN_IF_ERROR(r->U64(&stats->test_records));
  CTFL_RETURN_IF_ERROR(r->F64(&stats->origin_tau_w));
  uint32_t delta = 0, count = 0;
  CTFL_RETURN_IF_ERROR(r->U32(&delta));
  stats->origin_delta = static_cast<int32_t>(delta);
  CTFL_RETURN_IF_ERROR(r->U64(&stats->exact_fallbacks));
  CTFL_RETURN_IF_ERROR(r->Str(&stats->trace_isa));
  CTFL_RETURN_IF_ERROR(r->U32(&count));
  stats->participant_names.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    CTFL_RETURN_IF_ERROR(r->Str(&stats->participant_names[i]));
  }
  CTFL_RETURN_IF_ERROR(r->U64(&stats->rounds_folded));  // v3
  return Status::OK();
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kRelated:
      return "RELATED";
    case Op::kRelatedForTest:
      return "RELATED_FOR_TEST";
    case Op::kEvaluate:
      return "EVALUATE";
    case Op::kStats:
      return "STATS";
    case Op::kShutdown:
      return "SHUTDOWN";
  }
  return "UNKNOWN";
}

std::string EncodeRequest(const Request& request) {
  wire::Writer w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(request.op));
  w.U64(request.request_id);
  switch (request.op) {
    case Op::kRelated:
      EncodeInstance(request.related.instance, &w);
      EncodeQueryOptions(request.related.options, &w);
      break;
    case Op::kRelatedForTest:
      w.U64(request.related_for_test.test_index);
      EncodeQueryOptions(request.related_for_test.options, &w);
      break;
    case Op::kEvaluate:
      w.F64(request.evaluate.options.tau_w);
      w.U32(static_cast<uint32_t>(request.evaluate.options.delta));
      w.U32(static_cast<uint32_t>(request.evaluate.options.top_k));
      w.U8(static_cast<uint8_t>(request.evaluate.options.kernel));
      break;
    case Op::kStats:
    case Op::kShutdown:
      break;
  }
  return w.Take();
}

Result<Request> DecodeRequest(std::string_view payload) {
  wire::Reader r(payload, kContext);
  uint8_t version = 0, op_byte = 0;
  CTFL_RETURN_IF_ERROR(r.U8(&version));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("serve frame has unsupported protocol version %u "
                  "(expected %u)",
                  version, kProtocolVersion));
  }
  CTFL_RETURN_IF_ERROR(r.U8(&op_byte));
  if (!ValidOp(op_byte)) {
    return Status::InvalidArgument(
        StrFormat("serve frame has unknown op %u", op_byte));
  }
  Request request;
  request.op = static_cast<Op>(op_byte);
  CTFL_RETURN_IF_ERROR(r.U64(&request.request_id));
  switch (request.op) {
    case Op::kRelated:
      CTFL_RETURN_IF_ERROR(DecodeInstance(&r, &request.related.instance));
      CTFL_RETURN_IF_ERROR(DecodeQueryOptions(&r, &request.related.options));
      break;
    case Op::kRelatedForTest:
      CTFL_RETURN_IF_ERROR(r.U64(&request.related_for_test.test_index));
      CTFL_RETURN_IF_ERROR(
          DecodeQueryOptions(&r, &request.related_for_test.options));
      break;
    case Op::kEvaluate: {
      uint32_t delta = 0, top_k = 0;
      uint8_t kernel = 0;
      CTFL_RETURN_IF_ERROR(r.F64(&request.evaluate.options.tau_w));
      CTFL_RETURN_IF_ERROR(r.U32(&delta));
      CTFL_RETURN_IF_ERROR(r.U32(&top_k));
      CTFL_RETURN_IF_ERROR(r.U8(&kernel));
      if (kernel > static_cast<uint8_t>(TraceKernelKind::kBlocked)) {
        return Status::InvalidArgument(
            StrFormat("serve frame has unknown trace kernel %u", kernel));
      }
      request.evaluate.options.delta = static_cast<int>(delta);
      request.evaluate.options.top_k = static_cast<int>(top_k);
      request.evaluate.options.kernel = static_cast<TraceKernelKind>(kernel);
      break;
    }
    case Op::kStats:
    case Op::kShutdown:
      break;
  }
  CTFL_RETURN_IF_ERROR(r.ExpectEnd(OpName(request.op)));
  return request;
}

std::string EncodeResponse(const Response& response) {
  wire::Writer w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.op));
  w.U64(response.request_id);
  if (!response.status.ok()) {
    w.U8(0);
    w.U8(EncodeStatusCode(response.status.code()));
    w.Str(response.status.message());
    return w.Take();
  }
  w.U8(1);
  switch (response.op) {
    case Op::kRelated:
    case Op::kRelatedForTest:
      EncodeRelatedResult(response.related, &w);
      break;
    case Op::kEvaluate:
      EncodeReport(response.report, &w);
      w.F64(response.origin_tau_w);
      w.U32(static_cast<uint32_t>(response.origin_delta));
      EncodeDoubles(response.origin_micro, &w);
      EncodeDoubles(response.origin_macro, &w);
      break;
    case Op::kStats:
    case Op::kShutdown:
      EncodeStats(response.stats, &w);
      break;
  }
  return w.Take();
}

Result<Response> DecodeResponse(std::string_view payload) {
  wire::Reader r(payload, kContext);
  uint8_t version = 0, op_byte = 0, ok_byte = 0;
  CTFL_RETURN_IF_ERROR(r.U8(&version));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("serve frame has unsupported protocol version %u "
                  "(expected %u)",
                  version, kProtocolVersion));
  }
  CTFL_RETURN_IF_ERROR(r.U8(&op_byte));
  if (!ValidOp(op_byte)) {
    return Status::InvalidArgument(
        StrFormat("serve frame has unknown op %u", op_byte));
  }
  Response response;
  response.op = static_cast<Op>(op_byte);
  CTFL_RETURN_IF_ERROR(r.U64(&response.request_id));
  CTFL_RETURN_IF_ERROR(r.U8(&ok_byte));
  if (ok_byte == 0) {
    uint8_t code = 0;
    std::string message;
    CTFL_RETURN_IF_ERROR(r.U8(&code));
    CTFL_RETURN_IF_ERROR(r.Str(&message));
    CTFL_RETURN_IF_ERROR(r.ExpectEnd("error response"));
    response.status = Status(DecodeStatusCode(code), std::move(message));
    return response;
  }
  switch (response.op) {
    case Op::kRelated:
    case Op::kRelatedForTest:
      CTFL_RETURN_IF_ERROR(DecodeRelatedResult(&r, &response.related));
      break;
    case Op::kEvaluate: {
      uint32_t delta = 0;
      CTFL_RETURN_IF_ERROR(DecodeReport(&r, &response.report));
      CTFL_RETURN_IF_ERROR(r.F64(&response.origin_tau_w));
      CTFL_RETURN_IF_ERROR(r.U32(&delta));
      response.origin_delta = static_cast<int32_t>(delta);
      CTFL_RETURN_IF_ERROR(DecodeDoubles(&r, &response.origin_micro));
      CTFL_RETURN_IF_ERROR(DecodeDoubles(&r, &response.origin_macro));
      break;
    }
    case Op::kStats:
    case Op::kShutdown:
      CTFL_RETURN_IF_ERROR(DecodeStats(&r, &response.stats));
      break;
  }
  CTFL_RETURN_IF_ERROR(r.ExpectEnd(OpName(response.op)));
  return response;
}

Result<std::string> Frame(std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("serve frame payload of %zu bytes exceeds the %u-byte "
                  "frame limit",
                  payload.size(), kMaxFrameBytes));
  }
  wire::Writer w;
  w.U32(static_cast<uint32_t>(payload.size()));
  std::string framed = w.Take();
  framed.append(payload);
  return framed;
}

void FrameDecoder::Append(const char* data, size_t size) {
  buffer_.append(data, size);
}

Result<bool> FrameDecoder::Next(std::string* payload) {
  if (poisoned_) {
    return Status::InvalidArgument("serve frame stream poisoned by an "
                                   "oversized length prefix");
  }
  if (buffer_.size() < 4) return false;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(buffer_[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    return Status::InvalidArgument(
        StrFormat("serve frame length prefix %u exceeds the %u-byte frame "
                  "limit",
                  len, kMaxFrameBytes));
  }
  if (buffer_.size() < 4 + static_cast<size_t>(len)) return false;
  payload->assign(buffer_, 4, len);
  buffer_.erase(0, 4 + static_cast<size_t>(len));
  return true;
}

}  // namespace serve
}  // namespace ctfl
