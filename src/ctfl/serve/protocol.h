#ifndef CTFL_SERVE_PROTOCOL_H_
#define CTFL_SERVE_PROTOCOL_H_

// Wire protocol of the resident contribution-query service (DESIGN.md
// §13). Length-prefixed binary frames over a byte stream (unix-domain or
// loopback TCP socket):
//
//   frame    u32 payload_len (little-endian, <= kMaxFrameBytes) | payload
//   request  u8 version | u8 op | u64 request_id | op body
//   response u8 version | u8 op (echo) | u64 request_id (echo)
//            | u8 ok | ok body (ok=1)  or  u8 code + str message (ok=0)
//
// Ops mirror the one-shot `ctfl_cli query` surface: RELATED runs deployed
// inference + an Eq. 4 lookup for a shipped instance, RELATED_FOR_TEST
// reuses a stored test activation, EVALUATE is the batch micro/macro
// recomputation, STATS reports server/bundle health, SHUTDOWN asks the
// server to drain. Every numeric field is fixed-width little-endian and
// doubles travel as IEEE-754 bit patterns, so the structured results are
// bit-exact across the wire — the served responses render byte-identically
// to the one-shot CLI (serve/render.h).
//
// The codec is strict both ways: unknown versions/ops, truncated bodies,
// and trailing bytes are decode errors, never silent defaults.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/util/result.h"

namespace ctfl {
namespace serve {

// v2: RelatedResult / QueryReport / STATS responses grew the blocked
// kernel's exact-fallback counter, and STATS reports the server's trace
// ISA tier. Request bodies are unchanged (the trace ISA and thread count
// are server-local implementation selectors, not wire fields).
// v3: STATS grew `rounds_folded` — the number of streaming delta-log
// rounds the server has folded into its live scores (0 when serving a
// static bundle). Request bodies are again unchanged.
inline constexpr uint8_t kProtocolVersion = 3;
/// Upper bound on one frame's payload (guards the length prefix against
/// corrupt peers; a full EVALUATE report over a large bundle stays far
/// below this).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class Op : uint8_t {
  kRelated = 1,
  kRelatedForTest = 2,
  kEvaluate = 3,
  kStats = 4,
  kShutdown = 5,
};

/// Human-readable op name ("RELATED", ...); "UNKNOWN" for bad values.
const char* OpName(Op op);

struct RelatedRequest {
  Instance instance;
  store::QueryOptions options;
};

struct RelatedForTestRequest {
  uint64_t test_index = 0;
  store::QueryOptions options;
};

struct EvaluateRequest {
  store::EvalOptions options;
};

/// One decoded request frame. Only the member matching `op` is meaningful.
struct Request {
  Op op = Op::kStats;
  uint64_t request_id = 0;
  RelatedRequest related;
  RelatedForTestRequest related_for_test;
  EvaluateRequest evaluate;
};

/// STATS response body: bundle shape + service counters, plus the
/// participant names a client needs to render related-record lookups
/// byte-identically to the CLI.
struct ServerStats {
  uint64_t requests_total = 0;
  uint64_t errors_total = 0;
  uint64_t related_requests = 0;
  uint64_t related_for_test_requests = 0;
  uint64_t evaluate_requests = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t bundle_bytes = 0;
  uint32_t num_participants = 0;
  uint32_t num_rules = 0;
  uint64_t train_records = 0;
  uint64_t test_records = 0;
  double origin_tau_w = 0.0;
  int32_t origin_delta = 1;
  /// Exact-fallback lanes accumulated over every lookup the server ran.
  uint64_t exact_fallbacks = 0;
  /// SIMD tier of the server's blocked trace kernel ("scalar", "avx2", ...).
  std::string trace_isa;
  std::vector<std::string> participant_names;
  /// Delta-log rounds folded into the live scores (v3; 0 = static bundle).
  uint64_t rounds_folded = 0;
};

/// One decoded response frame. `status` carries server-side failures
/// (unknown test index, bad op, ...); when ok, the member matching `op`
/// is meaningful. Evaluate responses also ship the originating run's
/// parameters and scores so the client can render the CLI's
/// "reproduction vs originating run" line without holding the bundle.
struct Response {
  Op op = Op::kStats;
  uint64_t request_id = 0;
  Status status = Status::OK();
  store::RelatedResult related;
  store::QueryReport report;
  double origin_tau_w = 0.0;
  int32_t origin_delta = 1;
  std::vector<double> origin_micro;
  std::vector<double> origin_macro;
  ServerStats stats;
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

/// Wraps an encoded payload in a length-prefixed frame.
Result<std::string> Frame(std::string_view payload);

/// Incremental deframer over a socket byte stream. Feed bytes as they
/// arrive; Next() pops complete frames in order. A length prefix beyond
/// kMaxFrameBytes poisons the decoder (every later Next() fails) — the
/// connection must be dropped, the stream cannot be resynchronized.
class FrameDecoder {
 public:
  void Append(const char* data, size_t size);

  /// True + fills `payload` when a full frame was buffered; false when
  /// more bytes are needed; error when the stream is poisoned.
  Result<bool> Next(std::string* payload);

  /// True when no partial frame is buffered (a clean drain point).
  bool idle() const { return buffer_.empty() && !poisoned_; }

 private:
  std::string buffer_;
  bool poisoned_ = false;
};

}  // namespace serve
}  // namespace ctfl

#endif  // CTFL_SERVE_PROTOCOL_H_
