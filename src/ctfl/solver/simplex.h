#ifndef CTFL_SOLVER_SIMPLEX_H_
#define CTFL_SOLVER_SIMPLEX_H_

#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// One linear constraint sum_j coeffs[j] * x_j  REL  rhs.
struct LpConstraint {
  enum class Rel { kLe, kGe, kEq };
  std::vector<double> coeffs;
  Rel rel = Rel::kLe;
  double rhs = 0.0;
};

/// minimize objective . x  subject to the constraints. Variables default
/// to x_j >= 0; set free_vars[j] for unrestricted variables (they are
/// internally split into positive parts).
struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;
  std::vector<bool> free_vars;  // empty = all non-negative
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpSolution {
  LpStatus status = LpStatus::kOptimal;
  double objective = 0.0;
  std::vector<double> x;
};

/// Dense two-phase simplex with Bland's anti-cycling rule. Built for the
/// LeastCore valuation scheme's problem sizes (tens of variables, a few
/// hundred constraints); exact within floating-point tolerance.
Result<LpSolution> SolveLp(const LpProblem& problem);

}  // namespace ctfl

#endif  // CTFL_SOLVER_SIMPLEX_H_
