#include "ctfl/solver/simplex.h"

#include <algorithm>
#include <cmath>

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

constexpr double kTol = 1e-9;
constexpr int kMaxIterations = 20000;

// Standard-form problem: min c.x s.t. A x = b, x >= 0, b >= 0.
struct StandardForm {
  size_t num_cols = 0;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<double> c;
  // Mapping back to original variables: x_orig[j] = x[pos[j]] - x[neg[j]]
  // (neg[j] == -1 when the variable was already non-negative).
  std::vector<int> pos;
  std::vector<int> neg;
};

StandardForm ToStandardForm(const LpProblem& problem) {
  StandardForm sf;
  const int n = problem.num_vars;
  sf.pos.resize(n);
  sf.neg.assign(n, -1);
  size_t col = 0;
  for (int j = 0; j < n; ++j) {
    sf.pos[j] = static_cast<int>(col++);
    const bool is_free =
        !problem.free_vars.empty() && problem.free_vars[j];
    if (is_free) sf.neg[j] = static_cast<int>(col++);
  }
  const size_t m = problem.constraints.size();

  // One slack/surplus column per inequality.
  std::vector<int> slack_col(m, -1);
  for (size_t i = 0; i < m; ++i) {
    if (problem.constraints[i].rel != LpConstraint::Rel::kEq) {
      slack_col[i] = static_cast<int>(col++);
    }
  }
  sf.num_cols = col;
  sf.a.assign(m, std::vector<double>(sf.num_cols, 0.0));
  sf.b.resize(m);
  sf.c.assign(sf.num_cols, 0.0);

  for (int j = 0; j < n; ++j) {
    sf.c[sf.pos[j]] = problem.objective[j];
    if (sf.neg[j] >= 0) sf.c[sf.neg[j]] = -problem.objective[j];
  }

  for (size_t i = 0; i < m; ++i) {
    const LpConstraint& con = problem.constraints[i];
    double sign = 1.0;
    LpConstraint::Rel rel = con.rel;
    if (con.rhs < 0.0) {
      sign = -1.0;
      if (rel == LpConstraint::Rel::kLe) {
        rel = LpConstraint::Rel::kGe;
      } else if (rel == LpConstraint::Rel::kGe) {
        rel = LpConstraint::Rel::kLe;
      }
    }
    for (int j = 0; j < n; ++j) {
      const double v = sign * con.coeffs[j];
      sf.a[i][sf.pos[j]] = v;
      if (sf.neg[j] >= 0) sf.a[i][sf.neg[j]] = -v;
    }
    sf.b[i] = sign * con.rhs;
    if (rel == LpConstraint::Rel::kLe) {
      sf.a[i][slack_col[i]] = 1.0;
    } else if (rel == LpConstraint::Rel::kGe) {
      sf.a[i][slack_col[i]] = -1.0;
    }
  }
  return sf;
}

// Tableau simplex over rows (m constraints + 1 objective row at the end).
// basis[i] = column basic in row i.
class Tableau {
 public:
  Tableau(const StandardForm& sf, bool phase_one)
      : m_(sf.a.size()), n_(sf.num_cols + (phase_one ? m_ : 0)) {
    rows_.assign(m_ + 1, std::vector<double>(n_ + 1, 0.0));
    basis_.resize(m_);
    for (size_t i = 0; i < m_; ++i) {
      for (size_t j = 0; j < sf.num_cols; ++j) rows_[i][j] = sf.a[i][j];
      rows_[i][n_] = sf.b[i];
    }
    if (phase_one) {
      // Artificial columns, identity basis; objective = sum of artificials.
      for (size_t i = 0; i < m_; ++i) {
        rows_[i][sf.num_cols + i] = 1.0;
        basis_[i] = static_cast<int>(sf.num_cols + i);
      }
      std::vector<double>& obj = rows_[m_];
      for (size_t i = 0; i < m_; ++i) obj[sf.num_cols + i] = 1.0;
      // Price out the basic artificials.
      for (size_t i = 0; i < m_; ++i) {
        for (size_t j = 0; j <= n_; ++j) obj[j] -= rows_[i][j];
      }
    }
  }

  size_t m() const { return m_; }
  size_t n() const { return n_; }
  std::vector<int>& basis() { return basis_; }
  std::vector<std::vector<double>>& rows() { return rows_; }

  /// Runs simplex iterations; returns kOptimal or kUnbounded /
  /// kIterationLimit. `allowed_cols` restricts entering columns (used in
  /// phase 2 to bar artificials).
  LpStatus Iterate(size_t allowed_cols) {
    for (int iter = 0; iter < kMaxIterations; ++iter) {
      // Bland's rule: smallest-index column with negative reduced cost.
      int enter = -1;
      for (size_t j = 0; j < allowed_cols; ++j) {
        if (rows_[m_][j] < -kTol) {
          enter = static_cast<int>(j);
          break;
        }
      }
      if (enter < 0) return LpStatus::kOptimal;

      // Ratio test (Bland tie-break on smallest basis index).
      int leave = -1;
      double best_ratio = 0.0;
      for (size_t i = 0; i < m_; ++i) {
        const double a = rows_[i][enter];
        if (a > kTol) {
          const double ratio = rows_[i][n_] / a;
          if (leave < 0 || ratio < best_ratio - kTol ||
              (std::abs(ratio - best_ratio) <= kTol &&
               basis_[i] < basis_[leave])) {
            leave = static_cast<int>(i);
            best_ratio = ratio;
          }
        }
      }
      if (leave < 0) return LpStatus::kUnbounded;
      Pivot(leave, enter);
    }
    return LpStatus::kIterationLimit;
  }

  void Pivot(int row, int col) {
    std::vector<double>& pivot_row = rows_[row];
    const double pivot = pivot_row[col];
    for (double& v : pivot_row) v /= pivot;
    for (size_t i = 0; i <= m_; ++i) {
      if (static_cast<int>(i) == row) continue;
      const double factor = rows_[i][col];
      if (factor == 0.0) continue;
      for (size_t j = 0; j <= n_; ++j) {
        rows_[i][j] -= factor * pivot_row[j];
      }
    }
    basis_[row] = col;
  }

 private:
  size_t m_;
  size_t n_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
};

}  // namespace

Result<LpSolution> SolveLp(const LpProblem& problem) {
  if (problem.num_vars <= 0) {
    return Status::InvalidArgument("LP needs at least one variable");
  }
  if (static_cast<int>(problem.objective.size()) != problem.num_vars) {
    return Status::InvalidArgument("objective size mismatch");
  }
  for (const LpConstraint& con : problem.constraints) {
    if (static_cast<int>(con.coeffs.size()) != problem.num_vars) {
      return Status::InvalidArgument("constraint width mismatch");
    }
  }
  if (!problem.free_vars.empty() &&
      static_cast<int>(problem.free_vars.size()) != problem.num_vars) {
    return Status::InvalidArgument("free_vars size mismatch");
  }

  const StandardForm sf = ToStandardForm(problem);
  const size_t m = sf.a.size();

  // Phase 1: drive artificials to zero.
  Tableau tableau(sf, /*phase_one=*/true);
  LpStatus status = tableau.Iterate(tableau.n());
  if (status != LpStatus::kOptimal) {
    LpSolution sol;
    sol.status = status;
    return sol;
  }
  if (tableau.rows()[m].back() < -1e-6) {
    LpSolution sol;
    sol.status = LpStatus::kInfeasible;
    return sol;
  }

  // Kick basic artificials out of the basis where possible.
  for (size_t i = 0; i < m; ++i) {
    if (tableau.basis()[i] >= static_cast<int>(sf.num_cols)) {
      for (size_t j = 0; j < sf.num_cols; ++j) {
        if (std::abs(tableau.rows()[i][j]) > kTol) {
          tableau.Pivot(static_cast<int>(i), static_cast<int>(j));
          break;
        }
      }
    }
  }

  // Phase 2: replace the objective row with the true objective, priced
  // out against the current basis.
  std::vector<double>& obj = tableau.rows()[m];
  std::fill(obj.begin(), obj.end(), 0.0);
  for (size_t j = 0; j < sf.num_cols; ++j) obj[j] = sf.c[j];
  for (size_t i = 0; i < m; ++i) {
    const int bj = tableau.basis()[i];
    if (bj < static_cast<int>(sf.num_cols) && std::abs(sf.c[bj]) > 0.0) {
      const double factor = sf.c[bj];
      for (size_t j = 0; j <= tableau.n(); ++j) {
        obj[j] -= factor * tableau.rows()[i][j];
      }
    }
  }
  status = tableau.Iterate(sf.num_cols);
  LpSolution sol;
  sol.status = status;
  if (status != LpStatus::kOptimal) return sol;

  std::vector<double> std_x(tableau.n(), 0.0);
  for (size_t i = 0; i < m; ++i) {
    std_x[tableau.basis()[i]] = tableau.rows()[i].back();
  }
  sol.x.resize(problem.num_vars);
  for (int j = 0; j < problem.num_vars; ++j) {
    sol.x[j] = std_x[sf.pos[j]] - (sf.neg[j] >= 0 ? std_x[sf.neg[j]] : 0.0);
  }
  sol.objective = 0.0;
  for (int j = 0; j < problem.num_vars; ++j) {
    sol.objective += problem.objective[j] * sol.x[j];
  }
  return sol;
}

}  // namespace ctfl
