#ifndef CTFL_UTIL_STRING_UTIL_H_
#define CTFL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Strict numeric parses (whole string must be consumed).
Result<double> ParseDouble(std::string_view s);
Result<int> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ctfl

#endif  // CTFL_UTIL_STRING_UTIL_H_
