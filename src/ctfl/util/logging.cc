#include "ctfl/util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace ctfl {
namespace {

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

/// Startup level: CTFL_LOG_LEVEL if set and recognized, else info.
int InitialLevel() {
  const char* env = std::getenv("CTFL_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  return static_cast<int>(LogLevelFromString(env, LogLevel::kInfo));
}

std::atomic<int> g_min_level{InitialLevel()};

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogLevel LogLevelFromString(const std::string& value, LogLevel fallback) {
  std::string lower;
  lower.reserve(value.size());
  for (char c : value) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return fallback;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() { Flush(); }

void LogMessage::Flush() {
  if (enabled_ && !flushed_) {
    stream_ << "\n";
    // One fwrite per record: POSIX stdio streams lock around each call, so
    // concurrent ThreadPool workers cannot interleave partial records the
    // way multiple operator<< calls on std::cerr can.
    const std::string record = stream_.str();
    std::fwrite(record.data(), 1, record.size(), stderr);
    std::fflush(stderr);
    flushed_ = true;
  }
}

}  // namespace internal_logging
}  // namespace ctfl
