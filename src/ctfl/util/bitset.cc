#include "ctfl/util/bitset.h"

#include <bit>

#include "ctfl/util/logging.h"

namespace ctfl {

void Bitset::Set(size_t i) {
  CTFL_CHECK(i < size_);
  words_[i / 64] |= (1ULL << (i % 64));
}

void Bitset::Clear(size_t i) {
  CTFL_CHECK(i < size_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool Bitset::Test(size_t i) const {
  CTFL_CHECK(i < size_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

size_t Bitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

size_t Bitset::AndCount(const Bitset& other) const {
  CTFL_CHECK(size_ == other.size_);
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

bool Bitset::Contains(const Bitset& other) const {
  CTFL_CHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != other.words_[i]) return false;
  }
  return true;
}

bool Bitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  CTFL_CHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  CTFL_CHECK(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

std::vector<size_t> Bitset::SetBits() const {
  std::vector<size_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(wi * 64 + bit);
      w &= w - 1;
    }
  }
  return out;
}

void Bitset::AndWordsInto(uint64_t* dst) const {
  for (size_t i = 0; i < words_.size(); ++i) dst[i] &= words_[i];
}

std::string Bitset::ToString() const {
  std::string out(size_, '0');
  for (size_t i = 0; i < size_; ++i) {
    if (Test(i)) out[i] = '1';
  }
  return out;
}

Result<Bitset> Bitset::FromWords(size_t size, std::vector<uint64_t> words) {
  const size_t expected_words = (size + 63) / 64;
  if (words.size() != expected_words) {
    return Status::InvalidArgument("bitset word count does not match size");
  }
  if (size % 64 != 0 && !words.empty()) {
    const uint64_t tail_mask = ~0ULL << (size % 64);
    if ((words.back() & tail_mask) != 0) {
      return Status::InvalidArgument("bitset has set bits past its size");
    }
  }
  Bitset out;
  out.size_ = size;
  out.words_ = std::move(words);
  return out;
}

size_t Bitset::Hash() const {
  // FNV-1a over the words.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
  }
  h ^= size_;
  h *= 0x100000001b3ULL;
  return static_cast<size_t>(h);
}

}  // namespace ctfl
