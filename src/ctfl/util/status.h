#ifndef CTFL_UTIL_STATUS_H_
#define CTFL_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ctfl {

/// Canonical error space, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
};

/// Returns the canonical spelling of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value used throughout the library in place
/// of exceptions. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define CTFL_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::ctfl::Status _ctfl_status = (expr);          \
    if (!_ctfl_status.ok()) return _ctfl_status;   \
  } while (false)

}  // namespace ctfl

#endif  // CTFL_UTIL_STATUS_H_
