#include "ctfl/util/csv.h"

#include <fstream>

#include "ctfl/util/string_util.h"

namespace ctfl {

Result<CsvTable> ReadCsv(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  CsvTable table;
  std::string line;
  bool first = true;
  size_t width = 0;
  while (std::getline(in, line)) {
    if (Trim(line).empty()) continue;
    std::vector<std::string> fields = Split(line, ',');
    for (std::string& f : fields) f = std::string(Trim(f));
    if (first && has_header) {
      table.header = std::move(fields);
      width = table.header.size();
      first = false;
      continue;
    }
    if (width == 0) width = fields.size();
    if (fields.size() != width) {
      return Status::InvalidArgument(
          StrFormat("%s: row width %zu != %zu", path.c_str(), fields.size(),
                    width));
    }
    table.rows.push_back(std::move(fields));
    first = false;
  }
  return table;
}

Status WriteCsv(const std::string& path, const CsvTable& table) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  if (!table.header.empty()) out << Join(table.header, ",") << "\n";
  for (const auto& row : table.rows) out << Join(row, ",") << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace ctfl
