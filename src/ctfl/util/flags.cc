#include "ctfl/util/flags.h"

#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

bool FlagParser::IsBoolFlag(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() &&
         (it->second == "true" || it->second == "false");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (IsBoolFlag(name)) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a value");
      }
    }
    it->second = value;
  }
  return Status::OK();
}

std::string FlagParser::GetString(const std::string& name) const {
  const auto it = values_.find(name);
  CTFL_CHECK(it != values_.end());
  return it->second;
}

Result<int> FlagParser::GetInt(const std::string& name) const {
  return ParseInt(GetString(name));
}

Result<double> FlagParser::GetDouble(const std::string& name) const {
  return ParseDouble(GetString(name));
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetString(name) == "true";
}

}  // namespace ctfl
