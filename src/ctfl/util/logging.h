#ifndef CTFL_UTIL_LOGGING_H_
#define CTFL_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ctfl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. The initial
/// level honors the CTFL_LOG_LEVEL environment variable at startup
/// ("debug"/"info"/"warning"/"error", case-insensitive, or "0".."3");
/// unset or unrecognized values default to info.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name or digit as accepted by CTFL_LOG_LEVEL; returns
/// `fallback` for unrecognized input.
LogLevel LogLevelFromString(const std::string& value,
                            LogLevel fallback = LogLevel::kInfo);

namespace internal_logging {

/// Stream-style log message that emits on destruction. The whole record —
/// prefix, payload, trailing newline — is written to stderr with one
/// fwrite so records from concurrent ThreadPool workers never interleave.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 protected:
  /// Writes the buffered message to stderr (once); safe to call repeatedly.
  void Flush();

 private:
  bool enabled_;
  bool flushed_ = false;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting.
class FatalLogMessage : public LogMessage {
 public:
  FatalLogMessage(const char* file, int line)
      : LogMessage(LogLevel::kError, file, line) {}
  [[noreturn]] ~FatalLogMessage() {
    Flush();
    std::abort();
  }
};

}  // namespace internal_logging

#define CTFL_LOG(level)                                               \
  ::ctfl::internal_logging::LogMessage(::ctfl::LogLevel::k##level,    \
                                       __FILE__, __LINE__)

#define CTFL_LOG_FATAL \
  ::ctfl::internal_logging::FatalLogMessage(__FILE__, __LINE__)

/// Invariant check, active in all build modes.
#define CTFL_CHECK(cond)                                  \
  if (!(cond))                                            \
  CTFL_LOG_FATAL << "Check failed: " #cond " "

}  // namespace ctfl

#endif  // CTFL_UTIL_LOGGING_H_
