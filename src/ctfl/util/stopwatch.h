#ifndef CTFL_UTIL_STOPWATCH_H_
#define CTFL_UTIL_STOPWATCH_H_

#include <cstdint>
#include <chrono>

namespace ctfl {

/// Wall-clock stopwatch used by the benchmark harnesses and the telemetry
/// spans. Alongside the total elapsed time it keeps a "lap" mark so a
/// single watch can time consecutive phases (rounds, epochs) without
/// re-reading the clock twice per boundary.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()), lap_(start_) {}

  /// Resets both the start and the lap mark.
  void Restart() {
    start_ = Clock::now();
    lap_ = start_;
  }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time since construction/Restart in integer microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Seconds since the previous lap mark (or Restart/construction), and
  /// advances the lap mark. Consecutive laps tile the total elapsed time.
  double LapSeconds() {
    const Clock::time_point now = Clock::now();
    const double lap = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return lap;
  }

  /// Microsecond variant of LapSeconds().
  int64_t LapMicros() {
    const Clock::time_point now = Clock::now();
    const int64_t lap = std::chrono::duration_cast<std::chrono::microseconds>(
                            now - lap_)
                            .count();
    lap_ = now;
    return lap;
  }

  /// Seconds since the previous lap mark without advancing it.
  double PeekLapSeconds() const {
    return std::chrono::duration<double>(Clock::now() - lap_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace ctfl

#endif  // CTFL_UTIL_STOPWATCH_H_
