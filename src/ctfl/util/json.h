#ifndef CTFL_UTIL_JSON_H_
#define CTFL_UTIL_JSON_H_

// Minimal recursive-descent JSON reader for the observability round
// trips: RunReport parse-back, metrics snapshot (JSONL) consumption, and
// BENCH_*.json inspection in tests. Parses the JSON subset our own
// writers emit (objects, arrays, strings with standard escapes, numbers,
// booleans, null). Numbers are kept both as a double (strtod — bit-exact
// for our %.17g writers) and as the raw source text so integer callers
// can reparse without double-rounding.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< source text of the number token
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (JSON objects may repeat keys;
  /// Find returns the first).
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Integer view of a number token (strtoll on the raw text; falls back
  /// to a cast of the double for exponent forms).
  int64_t AsInt64() const;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslash, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace ctfl

#endif  // CTFL_UTIL_JSON_H_
