#include "ctfl/util/json.h"

#include <cctype>
#include <cstdlib>

#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    CTFL_RETURN_IF_ERROR(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StrFormat("json: %s at offset %zu", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(StrFormat("expected '%c'", c));
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      }
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out) {
    CTFL_RETURN_IF_ERROR(Expect('{'));
    out->kind = JsonValue::Kind::kObject;
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      CTFL_RETURN_IF_ERROR(ParseString(&key));
      CTFL_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      CTFL_RETURN_IF_ERROR(ParseValue(&value));
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume('}')) return Status::OK();
      CTFL_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out) {
    CTFL_RETURN_IF_ERROR(Expect('['));
    out->kind = JsonValue::Kind::kArray;
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      CTFL_RETURN_IF_ERROR(ParseValue(&value));
      out->array.push_back(std::move(value));
      if (Consume(']')) return Status::OK();
      CTFL_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // Our writers only emit \u00xx for control bytes; decode the
          // low byte and pass anything wider through UTF-8-ly enough for
          // a round trip of what we write.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseBool(JsonValue* out) {
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      pos_ += 5;
      return Status::OK();
    }
    return Error("expected boolean");
  }

  Status ParseNull(JsonValue* out) {
    if (text_.compare(pos_, 4, "null") == 0) {
      out->kind = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Error("expected null");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    out->kind = JsonValue::Kind::kNumber;
    out->raw_number = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(out->raw_number.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t JsonValue::AsInt64() const {
  if (!raw_number.empty() && raw_number.find_first_of(".eE") ==
                                 std::string::npos) {
    char* end = nullptr;
    const long long v = std::strtoll(raw_number.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') return static_cast<int64_t>(v);
  }
  return static_cast<int64_t>(number);
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace ctfl
