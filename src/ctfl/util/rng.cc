#include "ctfl/util/rng.h"

#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  CTFL_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  // Box-Muller; discards the paired variate for simplicity.
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Gamma(double shape) {
  CTFL_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
    const double u = Uniform();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::Dirichlet(double alpha, int k) {
  CTFL_CHECK(k > 0);
  std::vector<double> out(k);
  double sum = 0.0;
  for (int i = 0; i < k; ++i) {
    out[i] = Gamma(alpha);
    sum += out[i];
  }
  if (sum <= 0.0) {
    // Degenerate draw (possible for tiny alpha): fall back to uniform.
    for (double& x : out) x = 1.0 / k;
    return out;
  }
  for (double& x : out) x /= sum;
  return out;
}

int Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  CTFL_CHECK(total > 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

void Rng::Shuffle(std::vector<int>& perm) {
  for (size_t i = perm.size(); i > 1; --i) {
    const size_t j = UniformInt(i);
    std::swap(perm[i - 1], perm[j]);
  }
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  Shuffle(perm);
  return perm;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace ctfl
