#ifndef CTFL_UTIL_WIRE_H_
#define CTFL_UTIL_WIRE_H_

// Little-endian primitive encoding shared by the bundle container
// (store/bundle.cc) and the query-service wire protocol
// (serve/protocol.cc). Writer appends to an owned buffer; Reader walks a
// borrowed string_view — zero-copy over mmap'd bundle sections and socket
// frames alike — and reports truncation as Status instead of reading past
// the end. The `context` string names the payload in error messages
// ("bundle section payload truncated", "serve frame truncated", ...).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {
namespace wire {

class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Words(const std::vector<uint64_t>& words) {
    for (uint64_t w : words) U64(w);
  }
  size_t size() const { return buf_.size(); }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class Reader {
 public:
  /// `data` must outlive the reader. `context` prefixes error messages.
  explicit Reader(std::string_view data, std::string context = "wire")
      : data_(data), context_(std::move(context)) {}

  Status U8(uint8_t* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status I64(int64_t* out);
  Status F64(double* out);
  Status Str(std::string* out);
  Status Words(size_t count, std::vector<uint64_t>* out);

  bool AtEnd() const { return pos_ == data_.size(); }
  /// InvalidArgument naming `what` when bytes remain unconsumed.
  Status ExpectEnd(const char* what) const;

 private:
  Status Truncated() const;

  std::string_view data_;
  std::string context_;
  size_t pos_ = 0;
};

}  // namespace wire
}  // namespace ctfl

#endif  // CTFL_UTIL_WIRE_H_
