#include "ctfl/util/thread_pool.h"

#include <algorithm>

namespace ctfl {

namespace {

/// Set for the lifetime of every worker thread (any pool). Lets nested
/// parallel sections detect they are already inside the pool machinery.
thread_local bool t_in_pool_worker = false;

}  // namespace

int ResolveThreadCount(int num_threads) {
  if (num_threads > 0) return num_threads;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 4;
}

bool ThreadPool::InPoolWorker() { return t_in_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  num_threads = ResolveThreadCount(num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;

  // Nested-submission deadlock guard: a worker thread calling ParallelFor
  // on its own (or any) pool would block in Wait() while occupying the
  // very worker slot its chunks need. Run inline instead — exceptions
  // propagate naturally on this path.
  if (InPoolWorker()) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const size_t n = end - begin;
  const size_t chunks =
      std::min<size_t>(n, static_cast<size_t>(num_threads()) * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;

  std::mutex error_mu;
  std::exception_ptr first_error;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    Submit([lo, hi, &fn, &error_mu, &first_error] {
      try {
        for (size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  Wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ctfl
