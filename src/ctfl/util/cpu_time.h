#ifndef CTFL_UTIL_CPU_TIME_H_
#define CTFL_UTIL_CPU_TIME_H_

// CPU-clock and process-resource probes backing the profiling-grade
// telemetry layer (DESIGN.md §12): per-span thread CPU time, per-phase
// process CPU time, and getrusage deltas (max RSS, context switches).
//
// All probes degrade gracefully: on platforms without the POSIX clocks
// they return 0 and CpuTimeSupported() reports false, so telemetry
// consumers can distinguish "no CPU work" from "not measured".

#include <cstdint>

namespace ctfl {

/// True when the per-thread / per-process CPU clocks are available.
bool CpuTimeSupported();

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID). 0 when unsupported.
int64_t ThreadCpuMicros();

/// CPU time consumed by the whole process across all threads, in
/// microseconds (CLOCK_PROCESS_CPUTIME_ID). 0 when unsupported.
int64_t ProcessCpuMicros();

/// Point-in-time process resource usage (getrusage(RUSAGE_SELF)).
/// max_rss_kb is a high-water mark; the context-switch counters are
/// monotonically increasing totals — subtract two probes for a delta.
struct ResourceUsage {
  int64_t max_rss_kb = 0;
  int64_t voluntary_ctx_switches = 0;
  int64_t involuntary_ctx_switches = 0;
  int64_t user_cpu_micros = 0;
  int64_t system_cpu_micros = 0;
};

/// Current process usage; all-zero when getrusage is unavailable.
ResourceUsage CurrentResourceUsage();

/// Stopwatch over the calling thread's CPU clock. Mirrors Stopwatch's
/// Restart/Elapsed shape; only meaningful when read from the thread that
/// constructed it.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(ThreadCpuMicros()) {}
  void Restart() { start_ = ThreadCpuMicros(); }
  int64_t ElapsedMicros() const { return ThreadCpuMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }
  /// Elapsed seconds since construction/last lap, then restarts.
  double LapSeconds() {
    const int64_t now = ThreadCpuMicros();
    const double lap = static_cast<double>(now - start_) / 1e6;
    start_ = now;
    return lap;
  }

 private:
  int64_t start_;
};

/// Stopwatch over the process CPU clock (sums every thread's CPU time),
/// for per-phase breakdowns that must include ThreadPool workers.
class ProcessCpuStopwatch {
 public:
  ProcessCpuStopwatch() : start_(ProcessCpuMicros()) {}
  void Restart() { start_ = ProcessCpuMicros(); }
  int64_t ElapsedMicros() const { return ProcessCpuMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }
  /// Elapsed seconds since construction/last lap, then restarts.
  double LapSeconds() {
    const int64_t now = ProcessCpuMicros();
    const double lap = static_cast<double>(now - start_) / 1e6;
    start_ = now;
    return lap;
  }

 private:
  int64_t start_;
};

}  // namespace ctfl

#endif  // CTFL_UTIL_CPU_TIME_H_
