#ifndef CTFL_UTIL_CSV_H_
#define CTFL_UTIL_CSV_H_

#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// Parsed CSV contents: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Reads a comma-separated file. `has_header` controls whether the first
/// line populates `header`. Fields are trimmed; quoting is not supported
/// (none of the reproduced datasets need it).
Result<CsvTable> ReadCsv(const std::string& path, bool has_header = true);

/// Writes `table` to `path`, overwriting.
Status WriteCsv(const std::string& path, const CsvTable& table);

}  // namespace ctfl

#endif  // CTFL_UTIL_CSV_H_
