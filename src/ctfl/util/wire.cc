#include "ctfl/util/wire.h"

#include <cstring>

#include "ctfl/util/string_util.h"

namespace ctfl {
namespace wire {

void Writer::F64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

Status Reader::U8(uint8_t* out) {
  if (pos_ + 1 > data_.size()) return Truncated();
  *out = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status Reader::U32(uint32_t* out) {
  if (pos_ + 4 > data_.size()) return Truncated();
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status Reader::U64(uint64_t* out) {
  if (pos_ + 8 > data_.size()) return Truncated();
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status Reader::I64(int64_t* out) {
  uint64_t bits = 0;
  CTFL_RETURN_IF_ERROR(U64(&bits));
  *out = static_cast<int64_t>(bits);
  return Status::OK();
}

Status Reader::F64(double* out) {
  uint64_t bits = 0;
  CTFL_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status Reader::Str(std::string* out) {
  uint32_t len = 0;
  CTFL_RETURN_IF_ERROR(U32(&len));
  if (pos_ + len > data_.size()) return Truncated();
  out->assign(data_.substr(pos_, len));
  pos_ += len;
  return Status::OK();
}

Status Reader::Words(size_t count, std::vector<uint64_t>* out) {
  if (count > data_.size() / 8 || pos_ + 8 * count > data_.size()) {
    return Truncated();
  }
  out->resize(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t v = 0;
    CTFL_RETURN_IF_ERROR(U64(&v));
    (*out)[i] = v;
  }
  return Status::OK();
}

Status Reader::ExpectEnd(const char* what) const {
  if (!AtEnd()) {
    return Status::InvalidArgument(StrFormat("%s '%s' has %zu trailing bytes",
                                             context_.c_str(), what,
                                             data_.size() - pos_));
  }
  return Status::OK();
}

Status Reader::Truncated() const {
  return Status::InvalidArgument(context_ + " payload truncated");
}

}  // namespace wire
}  // namespace ctfl
