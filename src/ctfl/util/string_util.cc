#include "ctfl/util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ctfl {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                   s[b] == '\n')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: '" + buf + "'");
  }
  return v;
}

Result<int> ParseInt(std::string_view s) {
  const std::string buf(Trim(s));
  if (buf.empty()) return Status::InvalidArgument("empty number");
  char* end = nullptr;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an int: '" + buf + "'");
  }
  return static_cast<int>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(n);
    std::vsnprintf(out.data(), n + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ctfl
