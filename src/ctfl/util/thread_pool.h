#ifndef CTFL_UTIL_THREAD_POOL_H_
#define CTFL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace ctfl {

/// Resolves a user-facing `num_threads` knob to a concrete worker count:
/// `<= 0` means "hardware concurrency" (with a fallback of 4 when the
/// runtime cannot report it), any positive value is taken verbatim.
/// Shared by every parallel subsystem (tracer, FedAvg fan-out, matrix
/// kernels) so "0 = all cores, 1 = serial" means the same thing everywhere.
int ResolveThreadCount(int num_threads);

/// Fixed-size worker pool. CTFL's tracing phase is embarrassingly parallel
/// across test instances (paper §III-C); ParallelFor is its workhorse, and
/// the deterministic training engine (DESIGN.md §9) builds its ordered
/// reduction on top of it.
class ThreadPool {
 public:
  /// `num_threads <= 0` uses the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a worker of *any* ThreadPool. Nested
  /// parallel sections use this to run inline (deadlock guard: a worker
  /// that blocked in Wait() on its own pool could starve the queue) and
  /// the sharded matrix kernels use it to avoid oversubscription.
  static bool InPoolWorker();

  /// Enqueues a task; returns immediately. Tasks must not throw (use
  /// ParallelFor for exception-safe fan-out).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end), splitting into contiguous chunks
  /// across the pool, and blocks until done. fn must be thread-safe.
  ///
  /// - Called from inside any pool worker thread it degrades to a serial
  ///   inline loop (nested-submission deadlock guard).
  /// - Exceptions thrown by fn are captured; the first one (in completion
  ///   order) is rethrown on the calling thread after all chunks finish.
  ///   The throwing chunk stops at the faulting index; other chunks still
  ///   run to completion, so the pool stays reusable.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Deterministic parallel map + ordered serial reduce: `map(i)` runs in
  /// parallel for i in [begin, end), each result landing in its own slot;
  /// then `reduce(i, T&&)` is invoked serially in strict index order on
  /// the calling thread. Because the reduction order is independent of the
  /// worker schedule, any order-sensitive fold (floating-point sums,
  /// secure-aggregation masking) is bit-identical to a serial loop — the
  /// primitive behind the determinism contract of DESIGN.md §9.
  template <typename T, typename MapFn, typename ReduceFn>
  void OrderedReduce(size_t begin, size_t end, MapFn map, ReduceFn reduce) {
    if (begin >= end) return;
    std::vector<T> results(end - begin);
    ParallelFor(begin, end,
                [&](size_t i) { results[i - begin] = map(i); });
    for (size_t i = begin; i < end; ++i) {
      reduce(i, std::move(results[i - begin]));
    }
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace ctfl

#endif  // CTFL_UTIL_THREAD_POOL_H_
