#ifndef CTFL_UTIL_THREAD_POOL_H_
#define CTFL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ctfl {

/// Fixed-size worker pool. CTFL's tracing phase is embarrassingly parallel
/// across test instances (paper §III-C); ParallelFor is its workhorse.
class ThreadPool {
 public:
  /// `num_threads <= 0` uses the hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [begin, end), splitting into contiguous chunks
  /// across the pool, and blocks until done. fn must be thread-safe.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace ctfl

#endif  // CTFL_UTIL_THREAD_POOL_H_
