#ifndef CTFL_UTIL_RNG_H_
#define CTFL_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace ctfl {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// SplitMix64). All stochastic behavior in the library flows through Rng so
/// experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Raw 64 random bits.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev);

  /// Bernoulli with success probability p.
  bool Bernoulli(double p);

  /// Gamma(shape, 1) via Marsaglia-Tsang (with boost for shape < 1).
  double Gamma(double shape);

  /// Symmetric Dirichlet(alpha) sample of dimension k; entries sum to 1.
  std::vector<double> Dirichlet(double alpha, int k);

  /// Index sampled proportionally to `weights` (need not be normalized).
  int Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle of [0, n) indices stored in `perm`.
  void Shuffle(std::vector<int>& perm);

  /// Random permutation of [0, n).
  std::vector<int> Permutation(int n);

  /// Forks an independent stream (useful for per-worker determinism).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace ctfl

#endif  // CTFL_UTIL_RNG_H_
