#ifndef CTFL_UTIL_RESULT_H_
#define CTFL_UTIL_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "ctfl/util/status.h"

namespace ctfl {

/// Holds either a value of type T or an error Status (never both).
/// The library's no-exceptions analogue of absl::StatusOr<T>.
template <typename T>
class Result {
 public:
  /// Implicit so functions returning Result<T> can `return value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so functions returning Result<T> can `return status;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts with a diagnostic otherwise.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << status_ << "\n";
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// Status from the enclosing function.
#define CTFL_ASSIGN_OR_RETURN(lhs, expr)               \
  CTFL_ASSIGN_OR_RETURN_IMPL_(                         \
      CTFL_RESULT_CONCAT_(_ctfl_result, __LINE__), lhs, expr)

#define CTFL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define CTFL_RESULT_CONCAT_INNER_(a, b) a##b
#define CTFL_RESULT_CONCAT_(a, b) CTFL_RESULT_CONCAT_INNER_(a, b)

}  // namespace ctfl

#endif  // CTFL_UTIL_RESULT_H_
