#ifndef CTFL_UTIL_FLAGS_H_
#define CTFL_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// Minimal command-line parser for the CLI tool: positional arguments plus
/// `--key=value` / `--key value` / boolean `--flag` options. Unknown flags
/// are an error (catches typos); flags may appear in any position.
class FlagParser {
 public:
  /// `spec` maps flag name -> default value; a default of "false"/"true"
  /// marks a boolean flag (present means "true").
  explicit FlagParser(std::map<std::string, std::string> spec)
      : values_(std::move(spec)) {}

  /// Parses argv (excluding argv[0]); fills positionals and flag values.
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Lookup helpers; the flag must exist in the spec.
  std::string GetString(const std::string& name) const;
  Result<int> GetInt(const std::string& name) const;
  Result<double> GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

 private:
  bool IsBoolFlag(const std::string& name) const;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ctfl

#endif  // CTFL_UTIL_FLAGS_H_
