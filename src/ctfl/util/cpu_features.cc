#include "ctfl/util/cpu_features.h"

#include <atomic>
#include <cstdlib>

#include "ctfl/util/logging.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif

namespace ctfl {
namespace {

#if defined(__x86_64__) || defined(__i386__)
constexpr bool kX86 = true;
#else
constexpr bool kX86 = false;
#endif
#if defined(__aarch64__)
constexpr bool kAarch64 = true;
#else
constexpr bool kAarch64 = false;
#endif

bool RuntimeSupports(TraceIsa isa) {
  switch (isa) {
    case TraceIsa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case TraceIsa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case TraceIsa::kAvx512:
      return __builtin_cpu_supports("avx512f");
#endif
#if defined(__aarch64__)
    case TraceIsa::kNeon:
#if defined(__linux__)
      return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
      return true;  // Advanced SIMD is mandatory on aarch64.
#endif
#endif
    default:
      return false;
  }
}

// -1 = no override; otherwise the TraceIsa enumerator forced by
// SetTraceIsa. Relaxed ordering suffices: the value is a plain selector
// read at kernel-dispatch time, never part of an acquire/release pair.
std::atomic<int> g_isa_override{-1};

TraceIsa ResolveDefault() {
  const char* env = std::getenv("CTFL_TRACE_ISA");
  if (env != nullptr && *env != '\0') {
    const Result<TraceIsa> parsed = ParseTraceIsa(env);
    if (parsed.ok() && TraceIsaAvailable(*parsed)) return *parsed;
    CTFL_LOG(Warning) << "CTFL_TRACE_ISA='" << env
                      << "' is not an available ISA tier; using "
                      << TraceIsaName(BestAvailableTraceIsa());
  }
  return BestAvailableTraceIsa();
}

}  // namespace

const char* TraceIsaName(TraceIsa isa) {
  switch (isa) {
    case TraceIsa::kScalar:
      return "scalar";
    case TraceIsa::kNeon:
      return "neon";
    case TraceIsa::kAvx2:
      return "avx2";
    case TraceIsa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

Result<TraceIsa> ParseTraceIsa(const std::string& name) {
  if (name == "scalar") return TraceIsa::kScalar;
  if (name == "neon") return TraceIsa::kNeon;
  if (name == "avx2") return TraceIsa::kAvx2;
  if (name == "avx512") return TraceIsa::kAvx512;
  return Status::InvalidArgument("unknown trace ISA '" + name +
                                 "' (expected scalar|neon|avx2|avx512)");
}

bool TraceIsaCompiled(TraceIsa isa) {
  switch (isa) {
    case TraceIsa::kScalar:
      return true;
    case TraceIsa::kNeon:
      return kAarch64;
    case TraceIsa::kAvx2:
    case TraceIsa::kAvx512:
      return kX86;
  }
  return false;
}

bool TraceIsaAvailable(TraceIsa isa) {
  return TraceIsaCompiled(isa) && RuntimeSupports(isa);
}

TraceIsa BestAvailableTraceIsa() {
  for (TraceIsa isa : {TraceIsa::kAvx512, TraceIsa::kAvx2, TraceIsa::kNeon}) {
    if (TraceIsaAvailable(isa)) return isa;
  }
  return TraceIsa::kScalar;
}

std::vector<TraceIsa> AvailableTraceIsas() {
  std::vector<TraceIsa> out{TraceIsa::kScalar};
  for (TraceIsa isa : {TraceIsa::kNeon, TraceIsa::kAvx2, TraceIsa::kAvx512}) {
    if (TraceIsaAvailable(isa)) out.push_back(isa);
  }
  return out;
}

TraceIsa CurrentTraceIsa() {
  const int forced = g_isa_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<TraceIsa>(forced);
  static const TraceIsa resolved = ResolveDefault();
  return resolved;
}

Status SetTraceIsa(TraceIsa isa) {
  if (!TraceIsaAvailable(isa)) {
    std::string available;
    for (TraceIsa tier : AvailableTraceIsas()) {
      if (!available.empty()) available += "|";
      available += TraceIsaName(tier);
    }
    return Status::InvalidArgument(
        std::string("trace ISA '") + TraceIsaName(isa) +
        "' is not available on this machine (available: " + available + ")");
  }
  g_isa_override.store(static_cast<int>(isa), std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace ctfl
