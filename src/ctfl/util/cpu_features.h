#ifndef CTFL_UTIL_CPU_FEATURES_H_
#define CTFL_UTIL_CPU_FEATURES_H_

// Runtime ISA detection + process-wide SIMD-tier selection for the
// tracing kernel (kernel/trace_kernel.h, DESIGN.md §10).
//
// The blocked Eq. 4 kernel ships one translation unit per SIMD tier
// (portable scalar, AVX2, AVX-512, NEON), all compiled into the binary;
// which one runs is decided *once* per process, never per call:
//
//   1. an explicit SetTraceIsa() override (the --trace-isa flag), else
//   2. the CTFL_TRACE_ISA environment variable (scalar|avx2|avx512|neon;
//      ignored with a warning when the tier is unavailable), else
//   3. the best tier the running CPU supports (cpuid on x86, auxval on
//      aarch64).
//
// Every tier produces bit-identical match decisions and stats (DESIGN.md
// §10), so the selection is a pure implementation knob: it is excluded
// from config digests and run fingerprints exactly like the thread-count
// knobs of §9.

#include <cstdint>
#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// SIMD tier of the blocked tracing kernel. Order is meaningful: higher
/// enumerators are wider/faster tiers, and BestAvailableTraceIsa() picks
/// the largest available one.
enum class TraceIsa : uint8_t {
  kScalar = 0,  ///< portable uint64 lane loop (always available)
  kNeon = 1,    ///< aarch64 Advanced SIMD, 2 x f64 lanes
  kAvx2 = 2,    ///< x86-64 AVX2, 4 x f64 lanes
  kAvx512 = 3,  ///< x86-64 AVX-512F, 8 x f64 lanes + mask registers
};

/// Stable lowercase name ("scalar", "neon", "avx2", "avx512") — the
/// --trace-isa / CTFL_TRACE_ISA vocabulary and the label exported through
/// STATS, RunReport, Prometheus, and the bench context.
const char* TraceIsaName(TraceIsa isa);

/// Parses a TraceIsaName() string. Rejects "auto" — callers resolve it to
/// CurrentTraceIsa() themselves (the CLI flag default).
Result<TraceIsa> ParseTraceIsa(const std::string& name);

/// True when this binary carries a kernel for the tier (compile-time:
/// NEON only on aarch64, AVX tiers only on x86-64).
bool TraceIsaCompiled(TraceIsa isa);

/// True when the tier is compiled in *and* the running CPU supports it.
/// kScalar is always available.
bool TraceIsaAvailable(TraceIsa isa);

/// The widest available tier on this machine.
TraceIsa BestAvailableTraceIsa();

/// All available tiers, ascending (always starts with kScalar) — the
/// bench suite registers one kernel variant per entry.
std::vector<TraceIsa> AvailableTraceIsas();

/// The process-wide tier: SetTraceIsa override if any, else CTFL_TRACE_ISA
/// (resolved once, first call), else BestAvailableTraceIsa().
TraceIsa CurrentTraceIsa();

/// Forces the process-wide tier (the --trace-isa flag). Fails without
/// side effects when the tier is unavailable on this machine.
Status SetTraceIsa(TraceIsa isa);

}  // namespace ctfl

#endif  // CTFL_UTIL_CPU_FEATURES_H_
