#include "ctfl/util/cpu_time.h"

#if defined(__unix__) || defined(__APPLE__)
#define CTFL_HAVE_POSIX_CPU_TIME 1
#include <sys/resource.h>
#include <time.h>
#else
#define CTFL_HAVE_POSIX_CPU_TIME 0
#endif

namespace ctfl {
namespace {

#if CTFL_HAVE_POSIX_CPU_TIME
int64_t ClockMicros(clockid_t id) {
  timespec ts;
  if (clock_gettime(id, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 +
         static_cast<int64_t>(ts.tv_nsec) / 1000;
}
#endif

}  // namespace

bool CpuTimeSupported() { return CTFL_HAVE_POSIX_CPU_TIME != 0; }

int64_t ThreadCpuMicros() {
#if CTFL_HAVE_POSIX_CPU_TIME
  return ClockMicros(CLOCK_THREAD_CPUTIME_ID);
#else
  return 0;
#endif
}

int64_t ProcessCpuMicros() {
#if CTFL_HAVE_POSIX_CPU_TIME
  return ClockMicros(CLOCK_PROCESS_CPUTIME_ID);
#else
  return 0;
#endif
}

ResourceUsage CurrentResourceUsage() {
  ResourceUsage usage;
#if CTFL_HAVE_POSIX_CPU_TIME
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return usage;
#if defined(__APPLE__)
  usage.max_rss_kb = ru.ru_maxrss / 1024;  // bytes on macOS
#else
  usage.max_rss_kb = ru.ru_maxrss;  // kilobytes on Linux
#endif
  usage.voluntary_ctx_switches = ru.ru_nvcsw;
  usage.involuntary_ctx_switches = ru.ru_nivcsw;
  usage.user_cpu_micros =
      static_cast<int64_t>(ru.ru_utime.tv_sec) * 1000000 + ru.ru_utime.tv_usec;
  usage.system_cpu_micros =
      static_cast<int64_t>(ru.ru_stime.tv_sec) * 1000000 + ru.ru_stime.tv_usec;
#endif
  return usage;
}

}  // namespace ctfl
