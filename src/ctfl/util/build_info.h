#ifndef CTFL_UTIL_BUILD_INFO_H_
#define CTFL_UTIL_BUILD_INFO_H_

// Build-type identification for the performance observatory: RunReports,
// bench JSON context, and the perf gate all refuse to compare numbers
// across build types (a Debug trace pass is ~5x a Release one), so every
// artifact stamps this.

namespace ctfl {

/// "release" when assertions are compiled out (NDEBUG), "debug" otherwise.
/// Tracks the optimization reality of *this* translation's flags, which
/// CMake ties to CMAKE_BUILD_TYPE for every standard configuration.
inline const char* BuildTypeName() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

}  // namespace ctfl

#endif  // CTFL_UTIL_BUILD_INFO_H_
