#ifndef CTFL_UTIL_BITSET_H_
#define CTFL_UTIL_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

/// Fixed-size dynamic bitset backed by 64-bit words. Rule-activation vectors
/// are stored as Bitsets so tracing overlap reduces to word-wise AND +
/// popcount, the hot loop of CTFL's contribution tracing.
class Bitset {
 public:
  Bitset() : size_(0) {}
  explicit Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  /// Number of set bits in `this AND other`. Sizes must match.
  size_t AndCount(const Bitset& other) const;

  /// True if every set bit of `other` is also set in `this`.
  bool Contains(const Bitset& other) const;

  /// True if no bits are set.
  bool None() const;

  Bitset& operator&=(const Bitset& other);
  Bitset& operator|=(const Bitset& other);

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Indices of set bits, ascending.
  std::vector<size_t> SetBits() const;

  /// Calls `fn(size_t index)` for every set bit in ascending order without
  /// materializing an index vector — the allocation-free replacement for
  /// SetBits() on hot paths (tracer key build, uncovered aggregation,
  /// query-engine support enumeration).
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// ANDs this bitset's backing words into the raw word array `dst`
  /// (`dst[i] &= words()[i]` for every backing word). `dst` must hold at
  /// least `word_count()` words. Allocation-free mask intersection for
  /// word-parallel kernels that keep lane masks as raw uint64 arrays.
  void AndWordsInto(uint64_t* dst) const;

  /// Number of backing 64-bit words ((size + 63) / 64).
  size_t word_count() const { return words_.size(); }

  /// e.g. "10110" (bit 0 first).
  std::string ToString() const;

  /// Hash usable with std::unordered_map.
  size_t Hash() const;

  /// Backing 64-bit words (bit i lives in word i/64 at position i%64).
  /// Exposed for binary persistence; trailing bits past size() are zero.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Rebuilds a bitset of `size` bits from backing words (inverse of
  /// words()). Fails if the word count does not match or a trailing bit
  /// past `size` is set — both indicate a corrupt serialization.
  static Result<Bitset> FromWords(size_t size, std::vector<uint64_t> words);

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

struct BitsetHash {
  size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace ctfl

#endif  // CTFL_UTIL_BITSET_H_
