#ifndef CTFL_DATA_STATS_H_
#define CTFL_DATA_STATS_H_

#include <string>

#include "ctfl/data/dataset.h"

namespace ctfl {

/// Summary row for Table IV of the paper.
struct DatasetStats {
  std::string name;
  size_t num_instances = 0;
  int num_features = 0;
  int num_discrete = 0;
  int num_continuous = 0;
  double positive_rate = 0.0;

  /// "discrete", "continuous", or "mixed".
  std::string FeatureTypeLabel() const;
};

DatasetStats ComputeStats(const std::string& name, const Dataset& dataset);

/// Renders the stats as a Table-IV style line.
std::string FormatStatsRow(const DatasetStats& stats);

}  // namespace ctfl

#endif  // CTFL_DATA_STATS_H_
