#ifndef CTFL_DATA_SPLIT_H_
#define CTFL_DATA_SPLIT_H_

#include "ctfl/data/dataset.h"
#include "ctfl/util/rng.h"

namespace ctfl {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Random train/test split preserving the class ratio (stratified). The
/// test portion plays the role of the federation-reserved test set D_te
/// from paper Eq. (1).
TrainTestSplit StratifiedSplit(const Dataset& dataset, double test_fraction,
                               Rng& rng);

/// Plain (unstratified) random split.
TrainTestSplit RandomSplit(const Dataset& dataset, double test_fraction,
                           Rng& rng);

/// Returns a uniformly subsampled dataset of at most `max_size` instances.
Dataset Subsample(const Dataset& dataset, size_t max_size, Rng& rng);

}  // namespace ctfl

#endif  // CTFL_DATA_SPLIT_H_
