#ifndef CTFL_DATA_DATASET_H_
#define CTFL_DATA_DATASET_H_

#include <string>
#include <vector>

#include "ctfl/data/schema.h"
#include "ctfl/util/result.h"

namespace ctfl {

/// One labeled example. Discrete features store the category index as a
/// double; continuous features store the raw value.
struct Instance {
  std::vector<double> values;
  int label = 0;  // 0 = negative, 1 = positive
};

/// An in-memory labeled dataset bound to a FeatureSchema.
class Dataset {
 public:
  explicit Dataset(SchemaPtr schema) : schema_(std::move(schema)) {}

  const SchemaPtr& schema() const { return schema_; }
  size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }

  const Instance& instance(size_t i) const { return instances_[i]; }
  const std::vector<Instance>& instances() const { return instances_; }

  /// Validates the instance against the schema before appending.
  Status Append(Instance instance);

  /// Appends without validation (hot paths with pre-validated data).
  void AppendUnchecked(Instance instance) {
    instances_.push_back(std::move(instance));
  }

  /// Appends every instance of `other` (schemas must be compatible by
  /// feature count; callers are expected to share SchemaPtr instances).
  void Merge(const Dataset& other);

  /// New dataset containing instances_[i] for each i in `indices`.
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Number of instances per class: {negatives, positives}.
  std::vector<size_t> ClassCounts() const;

  /// Fraction of positive instances (0 if empty).
  double PositiveRate() const;

 private:
  SchemaPtr schema_;
  std::vector<Instance> instances_;
};

/// Parses one CSV row (feature fields in schema order plus a final label
/// field) into an Instance. The row-level half of LoadCsvDataset, exposed
/// so line-oriented front ends (`ctfl query --requests-file`, the query
/// service client) can parse single instances without a CSV file.
Result<Instance> ParseCsvInstanceRow(const SchemaPtr& schema,
                                     const std::vector<std::string>& fields);

/// Loads a dataset from CSV whose columns match `schema` feature names plus
/// a final "label" column containing the schema's label names.
Result<Dataset> LoadCsvDataset(const std::string& path, SchemaPtr schema);

/// Writes `dataset` as CSV (inverse of LoadCsvDataset).
Status SaveCsvDataset(const std::string& path, const Dataset& dataset);

}  // namespace ctfl

#endif  // CTFL_DATA_DATASET_H_
