#include "ctfl/data/gen/benchmarks.h"

#include <memory>

#include "ctfl/data/gen/tictactoe.h"
#include "ctfl/util/logging.h"

namespace ctfl {
namespace {

using Op = GtPredicate::Op;
using Kind = FeatureSampler::Kind;

FeatureSampler Uniform() { return FeatureSampler{Kind::kUniform, 0, 0, {}}; }
FeatureSampler NormalS(double mean, double sd) {
  return FeatureSampler{Kind::kNormal, mean, sd, {}};
}
FeatureSampler Spike(double p_zero) {
  return FeatureSampler{Kind::kSpikeUniform, p_zero, 0, {}};
}
FeatureSampler Cat(std::vector<double> weights) {
  return FeatureSampler{Kind::kCategorical, 0, 0, std::move(weights)};
}
FeatureSampler CatUniform() {
  return FeatureSampler{Kind::kCategorical, 0, 0, {}};
}

GtPredicate Pred(int feature, Op op, double value) {
  return GtPredicate{feature, op, value};
}

// ---------------------------------------------------------------------------
// adult — income > 50k prediction. 14 features (6 continuous, 8 discrete),
// positive rate ~0.24, achievable accuracy ~0.85. The planted rules echo the
// frequently-activated rules the paper's Table V reports (capital-gain,
// education-num, marital-status/hours, age/work-class).
// ---------------------------------------------------------------------------
SyntheticSpec AdultSpec() {
  std::vector<FeatureSpec> f;
  f.push_back(FeatureSchema::Continuous("age", 17, 90));                // 0
  f.push_back(FeatureSchema::Discrete(
      "work-class",
      {"private", "self-emp", "federal-gov", "state-gov", "local-gov",
       "other"}));                                                      // 1
  f.push_back(FeatureSchema::Continuous("fnlwgt", 12000, 1500000));    // 2
  f.push_back(FeatureSchema::Discrete(
      "education", {"hs-grad", "some-college", "bachelors", "masters",
                    "doctorate", "other"}));                            // 3
  f.push_back(FeatureSchema::Continuous("education-num", 1, 16));      // 4
  f.push_back(FeatureSchema::Discrete(
      "marital-status", {"married", "never", "divorced", "widowed"}));  // 5
  f.push_back(FeatureSchema::Discrete(
      "occupation",
      {"exec", "prof", "tech", "sales", "craft", "service", "other"}));  // 6
  f.push_back(FeatureSchema::Discrete(
      "relationship",
      {"husband", "wife", "own-child", "not-in-family", "other"}));     // 7
  f.push_back(
      FeatureSchema::Discrete("race", {"white", "black", "asian", "other"}));
  f.push_back(FeatureSchema::Discrete("sex", {"male", "female"}));     // 9
  f.push_back(FeatureSchema::Continuous("capital-gain", 0, 99999));    // 10
  f.push_back(FeatureSchema::Continuous("capital-loss", 0, 4356));     // 11
  f.push_back(FeatureSchema::Continuous("hours-per-week", 1, 99));     // 12
  f.push_back(
      FeatureSchema::Discrete("native-country", {"us", "mexico", "other"}));

  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(std::move(f), "<=50k", ">50k");
  spec.samplers = {
      NormalS(38, 13),          // age
      Cat({0.70, 0.08, 0.04, 0.05, 0.06, 0.07}),
      NormalS(190000, 105000),  // fnlwgt
      Cat({0.32, 0.22, 0.16, 0.06, 0.02, 0.22}),
      NormalS(10, 2.6),         // education-num
      Cat({0.46, 0.33, 0.14, 0.07}),
      CatUniform(),             // occupation
      Cat({0.40, 0.05, 0.16, 0.26, 0.13}),
      Cat({0.85, 0.10, 0.03, 0.02}),
      Cat({0.67, 0.33}),        // sex
      Spike(0.92),              // capital-gain
      Spike(0.95),              // capital-loss
      NormalS(40, 12),          // hours-per-week
      Cat({0.90, 0.02, 0.08}),
  };
  // Positive (>50k) evidence.
  spec.rules.push_back({{Pred(10, Op::kGt, 21000)}, 1, 3.0});
  spec.rules.push_back({{Pred(4, Op::kGt, 15)}, 1, 2.0});
  spec.rules.push_back(
      {{Pred(0, Op::kGt, 55), Pred(4, Op::kGt, 12)}, 1, 1.5});
  spec.rules.push_back(
      {{Pred(5, Op::kEq, 0), Pred(12, Op::kGt, 45), Pred(4, Op::kGt, 11)},
       1,
       1.5});
  spec.rules.push_back(
      {{Pred(1, Op::kEq, 3), Pred(4, Op::kGt, 13)}, 1, 1.0});
  // Negative (<=50k) evidence.
  spec.rules.push_back(
      {{Pred(10, Op::kLt, 5000), Pred(11, Op::kLt, 1000)}, 0, 1.0});
  spec.rules.push_back(
      {{Pred(5, Op::kEq, 1), Pred(12, Op::kGt, 14)}, 0, 1.5});
  spec.rules.push_back({{Pred(4, Op::kLt, 9)}, 0, 1.5});
  spec.rules.push_back({{Pred(0, Op::kLt, 25)}, 0, 1.0});
  spec.label_noise = 0.14;
  spec.base_positive_rate = 0.24;
  return spec;
}

// ---------------------------------------------------------------------------
// bank — term-deposit subscription. 16 mixed features, positive rate ~0.12,
// achievable accuracy ~0.89.
// ---------------------------------------------------------------------------
SyntheticSpec BankSpec() {
  std::vector<FeatureSpec> f;
  f.push_back(FeatureSchema::Continuous("age", 18, 95));                // 0
  f.push_back(FeatureSchema::Discrete(
      "job", {"admin", "blue-collar", "technician", "services", "management",
              "retired", "student", "other"}));                         // 1
  f.push_back(FeatureSchema::Discrete("marital",
                                      {"married", "single", "divorced"}));
  f.push_back(FeatureSchema::Discrete(
      "education", {"primary", "secondary", "tertiary", "unknown"}));   // 3
  f.push_back(FeatureSchema::Discrete("default", {"no", "yes"}));      // 4
  f.push_back(FeatureSchema::Continuous("balance", -8000, 102000));    // 5
  f.push_back(FeatureSchema::Discrete("housing", {"yes", "no"}));      // 6
  f.push_back(FeatureSchema::Discrete("loan", {"no", "yes"}));         // 7
  f.push_back(FeatureSchema::Discrete("contact",
                                      {"cellular", "telephone", "unknown"}));
  f.push_back(FeatureSchema::Continuous("day", 1, 31));                // 9
  f.push_back(FeatureSchema::Discrete(
      "month", {"jan", "feb", "mar", "apr", "may", "jun", "jul", "aug",
                "sep", "oct", "nov", "dec"}));                          // 10
  f.push_back(FeatureSchema::Continuous("duration", 0, 4918));         // 11
  f.push_back(FeatureSchema::Continuous("campaign", 1, 63));           // 12
  f.push_back(FeatureSchema::Continuous("pdays", -1, 871));            // 13
  f.push_back(FeatureSchema::Continuous("previous", 0, 275));          // 14
  f.push_back(FeatureSchema::Discrete(
      "poutcome", {"unknown", "failure", "success", "other"}));         // 15

  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(std::move(f), "no", "yes");
  spec.samplers = {
      NormalS(41, 11),
      CatUniform(),
      Cat({0.60, 0.28, 0.12}),
      Cat({0.15, 0.51, 0.29, 0.05}),
      Cat({0.98, 0.02}),
      NormalS(1400, 3000),
      Cat({0.56, 0.44}),
      Cat({0.84, 0.16}),
      Cat({0.65, 0.06, 0.29}),
      Uniform(),
      CatUniform(),
      FeatureSampler{Kind::kExponential, 260, 0, {}},
      FeatureSampler{Kind::kExponential, 2.0, 0, {}},
      Spike(0.82),
      Spike(0.82),
      Cat({0.82, 0.11, 0.03, 0.04}),
  };
  // Positive (subscribes) evidence — rare events, matching the real
  // dataset's ~0.12 subscription rate.
  spec.rules.push_back({{Pred(11, Op::kGt, 800)}, 1, 2.5});
  spec.rules.push_back({{Pred(15, Op::kEq, 2)}, 1, 2.5});
  spec.rules.push_back(
      {{Pred(5, Op::kGt, 6000), Pred(6, Op::kEq, 1)}, 1, 1.5});
  spec.rules.push_back(
      {{Pred(0, Op::kGt, 62), Pred(11, Op::kGt, 300)}, 1, 1.5});
  // Negative evidence.
  spec.rules.push_back({{Pred(11, Op::kLt, 150)}, 0, 2.0});
  spec.rules.push_back({{Pred(12, Op::kGt, 5)}, 0, 1.5});
  spec.rules.push_back({{Pred(4, Op::kEq, 1)}, 0, 1.5});
  spec.rules.push_back(
      {{Pred(7, Op::kEq, 1), Pred(5, Op::kLt, 500)}, 0, 1.0});
  spec.label_noise = 0.08;
  spec.base_positive_rate = 0.06;
  return spec;
}

// ---------------------------------------------------------------------------
// dota2 — match-winner prediction from draft. 116 discrete features
// (cluster/mode/type + 113 hero indicators in {dire, none, radiant}),
// positive rate ~0.53, achievable accuracy ~0.58 (the paper's hardest,
// lowest-signal task). Rules are weak pairwise hero synergies generated
// deterministically from a fixed seed.
// ---------------------------------------------------------------------------
SyntheticSpec Dota2Spec() {
  constexpr int kNumHeroes = 113;
  std::vector<FeatureSpec> f;
  f.push_back(FeatureSchema::Discrete(
      "cluster", {"us-west", "us-east", "europe", "sea", "china"}));    // 0
  f.push_back(FeatureSchema::Discrete("mode", {"all-pick", "captains",
                                               "random-draft"}));       // 1
  f.push_back(FeatureSchema::Discrete("type", {"ranked", "casual",
                                               "tournament"}));         // 2
  for (int h = 0; h < kNumHeroes; ++h) {
    f.push_back(FeatureSchema::Discrete("hero-" + std::to_string(h + 1),
                                        {"dire", "none", "radiant"}));
  }

  SyntheticSpec spec;
  spec.schema =
      std::make_shared<FeatureSchema>(std::move(f), "dire-wins",
                                      "radiant-wins");
  spec.samplers.push_back(CatUniform());
  spec.samplers.push_back(Cat({0.70, 0.20, 0.10}));
  spec.samplers.push_back(Cat({0.55, 0.40, 0.05}));
  for (int h = 0; h < kNumHeroes; ++h) {
    // ~5 heroes drafted per side in expectation (113 * 0.045).
    spec.samplers.push_back(Cat({0.045, 0.91, 0.045}));
  }

  // Weak synergy/strength rules, mirrored across sides so the task is
  // symmetric: a strong hero helps whichever side drafts it.
  Rng rule_rng(0xd07a2ULL);
  constexpr int kHeroBase = 3;
  constexpr int kDire = 0, kRadiant = 2;
  for (int i = 0; i < 24; ++i) {
    const int hero = static_cast<int>(rule_rng.UniformInt(kNumHeroes));
    spec.rules.push_back(
        {{Pred(kHeroBase + hero, Op::kEq, kRadiant)}, 1, 0.6});
    spec.rules.push_back({{Pred(kHeroBase + hero, Op::kEq, kDire)}, 0, 0.6});
  }
  for (int i = 0; i < 24; ++i) {
    const int a = static_cast<int>(rule_rng.UniformInt(kNumHeroes));
    int b = static_cast<int>(rule_rng.UniformInt(kNumHeroes));
    if (b == a) b = (b + 1) % kNumHeroes;
    spec.rules.push_back({{Pred(kHeroBase + a, Op::kEq, kRadiant),
                           Pred(kHeroBase + b, Op::kEq, kRadiant)},
                          1,
                          1.2});
    spec.rules.push_back({{Pred(kHeroBase + a, Op::kEq, kDire),
                           Pred(kHeroBase + b, Op::kEq, kDire)},
                          0,
                          1.2});
  }
  spec.label_noise = 0.35;
  spec.base_positive_rate = 0.53;
  return spec;
}

}  // namespace

size_t BenchmarkDefaultSize(const std::string& name) {
  if (name == "tic-tac-toe") return 958;
  if (name == "adult") return 32561;
  if (name == "bank") return 45211;
  if (name == "dota2") return 102944;
  return 0;
}

Result<SyntheticSpec> BenchmarkSpec(const std::string& name) {
  if (name == "adult") return AdultSpec();
  if (name == "bank") return BankSpec();
  if (name == "dota2") return Dota2Spec();
  return Status::NotFound("no synthetic spec for dataset " + name);
}

Result<Dataset> MakeBenchmark(const std::string& name, size_t n,
                              uint64_t seed) {
  if (name == "tic-tac-toe") return GenerateTicTacToe();
  CTFL_ASSIGN_OR_RETURN(SyntheticSpec spec, BenchmarkSpec(name));
  if (n == 0) n = BenchmarkDefaultSize(name);
  Rng rng(seed);
  return GenerateSynthetic(spec, n, rng);
}

}  // namespace ctfl
