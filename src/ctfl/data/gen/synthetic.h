#ifndef CTFL_DATA_GEN_SYNTHETIC_H_
#define CTFL_DATA_GEN_SYNTHETIC_H_

#include <vector>

#include "ctfl/data/dataset.h"
#include "ctfl/util/rng.h"

namespace ctfl {

/// Atomic condition of a planted ground-truth rule.
struct GtPredicate {
  enum class Op { kLt, kGt, kEq, kNeq };
  int feature = 0;
  Op op = Op::kGt;
  double value = 0.0;  // threshold (continuous) or category index (discrete)

  bool Holds(const Instance& instance) const;
};

/// A planted conjunction rule: if every predicate holds, the rule votes
/// `weight` toward class `label`.
struct GtRule {
  std::vector<GtPredicate> conjuncts;
  int label = 1;
  double weight = 1.0;

  bool Fires(const Instance& instance) const;
};

/// Marginal distribution used to draw one feature of a synthetic instance.
struct FeatureSampler {
  enum class Kind {
    kUniform,          // U[lo, hi]
    kNormal,           // N(a, b) clamped to [lo, hi]
    kExponential,      // lo + Exp(a) clamped to hi (heavy right tail)
    kSpikeUniform,     // value lo with prob a, else U[lo, hi] (e.g. capital-gain)
    kCategorical,      // discrete with weights `weights`
  };
  Kind kind = Kind::kUniform;
  double a = 0.0;
  double b = 1.0;
  std::vector<double> weights;  // kCategorical only

  double Sample(const FeatureSpec& spec, Rng& rng) const;
};

/// Generator recipe: schema + per-feature marginals + planted rules.
///
/// Labels are the sign of the weighted vote of fired rules; ties fall back
/// to Bernoulli(base_positive_rate); the final label is flipped with
/// probability `label_noise`, which upper-bounds achievable test accuracy
/// at roughly (1 - label_noise). This gives each benchmark dataset the
/// accuracy band reported in the paper while keeping an inspectable
/// ground-truth rule structure.
struct SyntheticSpec {
  SchemaPtr schema;
  std::vector<FeatureSampler> samplers;  // one per feature
  std::vector<GtRule> rules;
  double label_noise = 0.0;
  double base_positive_rate = 0.5;
};

/// Draws `n` i.i.d. instances from the recipe.
Dataset GenerateSynthetic(const SyntheticSpec& spec, size_t n, Rng& rng);

/// Labels a single already-drawn feature vector per the recipe (without
/// noise); exposed for tests that validate rule recovery.
int GroundTruthLabel(const SyntheticSpec& spec, const Instance& instance,
                     Rng& rng);

}  // namespace ctfl

#endif  // CTFL_DATA_GEN_SYNTHETIC_H_
