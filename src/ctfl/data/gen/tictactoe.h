#ifndef CTFL_DATA_GEN_TICTACTOE_H_
#define CTFL_DATA_GEN_TICTACTOE_H_

#include "ctfl/data/dataset.h"

namespace ctfl {

/// Schema of the UCI tic-tac-toe endgame dataset: nine discrete board
/// cells (top-left .. bottom-right) with categories {x, o, b}; the positive
/// class is "x wins".
SchemaPtr TicTacToeSchema();

/// Exact reconstruction of the UCI tic-tac-toe endgame dataset: all legal
/// terminal boards reachable when x moves first and play stops at a win or
/// a full board. Yields the canonical 958 instances (626 positive).
Dataset GenerateTicTacToe();

}  // namespace ctfl

#endif  // CTFL_DATA_GEN_TICTACTOE_H_
