#include "ctfl/data/gen/synthetic.h"

#include <algorithm>
#include <cmath>

#include "ctfl/util/logging.h"

namespace ctfl {

bool GtPredicate::Holds(const Instance& instance) const {
  const double v = instance.values[feature];
  switch (op) {
    case Op::kLt:
      return v < value;
    case Op::kGt:
      return v > value;
    case Op::kEq:
      return static_cast<int>(v) == static_cast<int>(value);
    case Op::kNeq:
      return static_cast<int>(v) != static_cast<int>(value);
  }
  return false;
}

bool GtRule::Fires(const Instance& instance) const {
  for (const GtPredicate& p : conjuncts) {
    if (!p.Holds(instance)) return false;
  }
  return true;
}

double FeatureSampler::Sample(const FeatureSpec& spec, Rng& rng) const {
  switch (kind) {
    case Kind::kUniform:
      return rng.Uniform(spec.lo, spec.hi);
    case Kind::kNormal: {
      const double v = rng.Normal(a, b);
      return std::clamp(v, spec.lo, spec.hi);
    }
    case Kind::kExponential: {
      double u = rng.Uniform();
      while (u <= 0.0) u = rng.Uniform();
      const double v = spec.lo - a * std::log(u);
      return std::clamp(v, spec.lo, spec.hi);
    }
    case Kind::kSpikeUniform: {
      if (rng.Bernoulli(a)) return spec.lo;
      return rng.Uniform(spec.lo, spec.hi);
    }
    case Kind::kCategorical: {
      CTFL_CHECK(spec.type == FeatureType::kDiscrete);
      if (weights.empty()) {
        return static_cast<double>(rng.UniformInt(spec.num_categories()));
      }
      CTFL_CHECK(static_cast<int>(weights.size()) == spec.num_categories());
      return rng.Categorical(weights);
    }
  }
  return spec.lo;
}

int GroundTruthLabel(const SyntheticSpec& spec, const Instance& instance,
                     Rng& rng) {
  double score = 0.0;
  for (const GtRule& rule : spec.rules) {
    if (rule.Fires(instance)) {
      score += rule.label == 1 ? rule.weight : -rule.weight;
    }
  }
  if (score > 0.0) return 1;
  if (score < 0.0) return 0;
  return rng.Bernoulli(spec.base_positive_rate) ? 1 : 0;
}

Dataset GenerateSynthetic(const SyntheticSpec& spec, size_t n, Rng& rng) {
  CTFL_CHECK(spec.schema != nullptr);
  CTFL_CHECK(spec.samplers.size() ==
             static_cast<size_t>(spec.schema->num_features()));
  Dataset dataset(spec.schema);
  for (size_t i = 0; i < n; ++i) {
    Instance inst;
    inst.values.resize(spec.schema->num_features());
    for (int f = 0; f < spec.schema->num_features(); ++f) {
      inst.values[f] = spec.samplers[f].Sample(spec.schema->feature(f), rng);
    }
    inst.label = GroundTruthLabel(spec, inst, rng);
    if (spec.label_noise > 0.0 && rng.Bernoulli(spec.label_noise)) {
      inst.label = 1 - inst.label;
    }
    dataset.AppendUnchecked(std::move(inst));
  }
  return dataset;
}

}  // namespace ctfl
