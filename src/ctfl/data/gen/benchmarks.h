#ifndef CTFL_DATA_GEN_BENCHMARKS_H_
#define CTFL_DATA_GEN_BENCHMARKS_H_

#include <string>
#include <vector>

#include "ctfl/data/gen/synthetic.h"
#include "ctfl/util/result.h"

namespace ctfl {

/// Names of the four paper benchmark datasets (Table IV).
inline constexpr const char* kBenchmarkNames[] = {"tic-tac-toe", "adult",
                                                  "bank", "dota2"};

/// Paper sizes for each benchmark (Table IV).
size_t BenchmarkDefaultSize(const std::string& name);

/// Synthetic recipe mirroring the named UCI/Kaggle dataset's schema,
/// marginals, class balance, and accuracy band (see DESIGN.md §5 for the
/// substitution rationale). Not defined for "tic-tac-toe", which is
/// reconstructed exactly by GenerateTicTacToe().
Result<SyntheticSpec> BenchmarkSpec(const std::string& name);

/// Generates the named benchmark with `n` instances (0 = the paper size).
/// "tic-tac-toe" ignores `n` and returns the exact 958-board dataset.
Result<Dataset> MakeBenchmark(const std::string& name, size_t n,
                              uint64_t seed);

}  // namespace ctfl

#endif  // CTFL_DATA_GEN_BENCHMARKS_H_
