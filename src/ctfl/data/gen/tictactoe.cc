#include "ctfl/data/gen/tictactoe.h"

#include <array>
#include <set>

namespace ctfl {
namespace {

// Cell encoding inside the generator: 0 = blank, 1 = x, 2 = o.
using Board = std::array<int, 9>;

constexpr int kLines[8][3] = {
    {0, 1, 2}, {3, 4, 5}, {6, 7, 8},  // rows
    {0, 3, 6}, {1, 4, 7}, {2, 5, 8},  // columns
    {0, 4, 8}, {2, 4, 6},             // diagonals
};

bool HasWin(const Board& b, int player) {
  for (const auto& line : kLines) {
    if (b[line[0]] == player && b[line[1]] == player && b[line[2]] == player) {
      return true;
    }
  }
  return false;
}

bool IsFull(const Board& b) {
  for (int c : b) {
    if (c == 0) return false;
  }
  return true;
}

void Enumerate(Board& board, int to_move, std::set<Board>& terminals) {
  // Terminal if the previous move won or the board is full.
  const int prev = to_move == 1 ? 2 : 1;
  if (HasWin(board, prev) || IsFull(board)) {
    terminals.insert(board);
    return;
  }
  for (int cell = 0; cell < 9; ++cell) {
    if (board[cell] != 0) continue;
    board[cell] = to_move;
    Enumerate(board, prev, terminals);
    board[cell] = 0;
  }
}

}  // namespace

SchemaPtr TicTacToeSchema() {
  const char* cell_names[9] = {
      "top-left",    "top-middle",    "top-right",
      "middle-left", "middle-middle", "middle-right",
      "bottom-left", "bottom-middle", "bottom-right",
  };
  std::vector<FeatureSpec> features;
  features.reserve(9);
  for (const char* name : cell_names) {
    features.push_back(FeatureSchema::Discrete(name, {"b", "x", "o"}));
  }
  return std::make_shared<FeatureSchema>(std::move(features), "o-or-draw",
                                         "x-wins");
}

Dataset GenerateTicTacToe() {
  Board board{};
  std::set<Board> terminals;
  Enumerate(board, /*to_move=*/1, terminals);

  SchemaPtr schema = TicTacToeSchema();
  Dataset dataset(schema);
  for (const Board& b : terminals) {
    Instance inst;
    inst.values.reserve(9);
    // Category index matches the schema ordering {b, x, o} and the
    // generator encoding {0, 1, 2} directly.
    for (int c : b) inst.values.push_back(c);
    inst.label = HasWin(b, /*player=*/1) ? 1 : 0;
    dataset.AppendUnchecked(std::move(inst));
  }
  return dataset;
}

}  // namespace ctfl
