#include "ctfl/data/schema.h"

#include <cstring>

namespace ctfl {
namespace {

// FNV-1a, byte-at-a-time; length-prefixed fields keep the hash injective
// over field boundaries ("ab","c" vs "a","bc").
class Fnv1a {
 public:
  void Bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

Result<int> FeatureSchema::FeatureIndex(const std::string& name) const {
  for (int i = 0; i < num_features(); ++i) {
    if (features_[i].name == name) return i;
  }
  return Status::NotFound("no feature named " + name);
}

Result<int> FeatureSchema::CategoryIndex(int feature_index,
                                         const std::string& category) const {
  if (feature_index < 0 || feature_index >= num_features()) {
    return Status::OutOfRange("feature index");
  }
  const FeatureSpec& spec = features_[feature_index];
  if (spec.type != FeatureType::kDiscrete) {
    return Status::InvalidArgument(spec.name + " is not discrete");
  }
  for (int c = 0; c < spec.num_categories(); ++c) {
    if (spec.categories[c] == category) return c;
  }
  return Status::NotFound("no category " + category + " in " + spec.name);
}

int FeatureSchema::num_discrete() const {
  int n = 0;
  for (const auto& f : features_) {
    if (f.type == FeatureType::kDiscrete) ++n;
  }
  return n;
}

int FeatureSchema::num_continuous() const {
  return num_features() - num_discrete();
}

uint64_t SchemaFingerprint(const FeatureSchema& schema) {
  Fnv1a h;
  h.U64(static_cast<uint64_t>(schema.num_features()));
  for (const FeatureSpec& spec : schema.features()) {
    h.Str(spec.name);
    h.U64(spec.type == FeatureType::kDiscrete ? 1 : 0);
    if (spec.type == FeatureType::kDiscrete) {
      h.U64(static_cast<uint64_t>(spec.categories.size()));
      for (const std::string& category : spec.categories) h.Str(category);
    } else {
      h.F64(spec.lo);
      h.F64(spec.hi);
    }
  }
  h.Str(schema.label_name(0));
  h.Str(schema.label_name(1));
  return h.value();
}

}  // namespace ctfl
