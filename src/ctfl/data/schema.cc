#include "ctfl/data/schema.h"

namespace ctfl {

Result<int> FeatureSchema::FeatureIndex(const std::string& name) const {
  for (int i = 0; i < num_features(); ++i) {
    if (features_[i].name == name) return i;
  }
  return Status::NotFound("no feature named " + name);
}

Result<int> FeatureSchema::CategoryIndex(int feature_index,
                                         const std::string& category) const {
  if (feature_index < 0 || feature_index >= num_features()) {
    return Status::OutOfRange("feature index");
  }
  const FeatureSpec& spec = features_[feature_index];
  if (spec.type != FeatureType::kDiscrete) {
    return Status::InvalidArgument(spec.name + " is not discrete");
  }
  for (int c = 0; c < spec.num_categories(); ++c) {
    if (spec.categories[c] == category) return c;
  }
  return Status::NotFound("no category " + category + " in " + spec.name);
}

int FeatureSchema::num_discrete() const {
  int n = 0;
  for (const auto& f : features_) {
    if (f.type == FeatureType::kDiscrete) ++n;
  }
  return n;
}

int FeatureSchema::num_continuous() const {
  return num_features() - num_discrete();
}

}  // namespace ctfl
