#include "ctfl/data/dataset.h"

#include "ctfl/util/csv.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {

Status Dataset::Append(Instance instance) {
  if (static_cast<int>(instance.values.size()) != schema_->num_features()) {
    return Status::InvalidArgument(
        StrFormat("instance width %zu != schema width %d",
                  instance.values.size(), schema_->num_features()));
  }
  if (instance.label != 0 && instance.label != 1) {
    return Status::InvalidArgument("label must be 0 or 1");
  }
  for (int f = 0; f < schema_->num_features(); ++f) {
    const FeatureSpec& spec = schema_->feature(f);
    if (spec.type == FeatureType::kDiscrete) {
      const int c = static_cast<int>(instance.values[f]);
      if (c < 0 || c >= spec.num_categories()) {
        return Status::OutOfRange(
            StrFormat("category %d out of range for %s", c,
                      spec.name.c_str()));
      }
    }
  }
  instances_.push_back(std::move(instance));
  return Status::OK();
}

void Dataset::Merge(const Dataset& other) {
  CTFL_CHECK(schema_->num_features() == other.schema_->num_features());
  instances_.insert(instances_.end(), other.instances_.begin(),
                    other.instances_.end());
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  Dataset out(schema_);
  out.instances_.reserve(indices.size());
  for (size_t i : indices) {
    CTFL_CHECK(i < instances_.size());
    out.instances_.push_back(instances_[i]);
  }
  return out;
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(2, 0);
  for (const Instance& inst : instances_) ++counts[inst.label];
  return counts;
}

double Dataset::PositiveRate() const {
  if (instances_.empty()) return 0.0;
  return static_cast<double>(ClassCounts()[1]) / instances_.size();
}

Result<Instance> ParseCsvInstanceRow(const SchemaPtr& schema,
                                     const std::vector<std::string>& fields) {
  const int nf = schema->num_features();
  if (static_cast<int>(fields.size()) != nf + 1) {
    return Status::InvalidArgument(
        StrFormat("expected %d fields (features + label), got %zu", nf + 1,
                  fields.size()));
  }
  Instance inst;
  inst.values.resize(nf);
  for (int f = 0; f < nf; ++f) {
    const FeatureSpec& spec = schema->feature(f);
    if (spec.type == FeatureType::kDiscrete) {
      CTFL_ASSIGN_OR_RETURN(int c, schema->CategoryIndex(f, fields[f]));
      inst.values[f] = c;
    } else {
      CTFL_ASSIGN_OR_RETURN(double v, ParseDouble(fields[f]));
      inst.values[f] = v;
    }
  }
  const std::string& label = fields[nf];
  if (label == schema->label_name(0)) {
    inst.label = 0;
  } else if (label == schema->label_name(1)) {
    inst.label = 1;
  } else {
    return Status::InvalidArgument("unknown label " + label);
  }
  return inst;
}

Result<Dataset> LoadCsvDataset(const std::string& path, SchemaPtr schema) {
  CTFL_ASSIGN_OR_RETURN(CsvTable table, ReadCsv(path, /*has_header=*/true));
  const int nf = schema->num_features();
  if (static_cast<int>(table.header.size()) != nf + 1) {
    return Status::InvalidArgument(
        StrFormat("%s: expected %d columns, got %zu", path.c_str(), nf + 1,
                  table.header.size()));
  }
  Dataset dataset(schema);
  for (const auto& row : table.rows) {
    CTFL_ASSIGN_OR_RETURN(Instance inst, ParseCsvInstanceRow(schema, row));
    CTFL_RETURN_IF_ERROR(dataset.Append(std::move(inst)));
  }
  return dataset;
}

Status SaveCsvDataset(const std::string& path, const Dataset& dataset) {
  const SchemaPtr& schema = dataset.schema();
  CsvTable table;
  for (const auto& spec : schema->features()) table.header.push_back(spec.name);
  table.header.push_back("label");
  for (const Instance& inst : dataset.instances()) {
    std::vector<std::string> row;
    row.reserve(inst.values.size() + 1);
    for (int f = 0; f < schema->num_features(); ++f) {
      const FeatureSpec& spec = schema->feature(f);
      if (spec.type == FeatureType::kDiscrete) {
        row.push_back(spec.categories[static_cast<int>(inst.values[f])]);
      } else {
        row.push_back(StrFormat("%.6g", inst.values[f]));
      }
    }
    row.push_back(schema->label_name(inst.label));
    table.rows.push_back(std::move(row));
  }
  return WriteCsv(path, table);
}

}  // namespace ctfl
