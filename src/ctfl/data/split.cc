#include "ctfl/data/split.h"

#include <algorithm>

namespace ctfl {
namespace {

TrainTestSplit SplitByIndices(const Dataset& dataset,
                              const std::vector<size_t>& test_indices) {
  std::vector<bool> is_test(dataset.size(), false);
  for (size_t i : test_indices) is_test[i] = true;
  std::vector<size_t> train_indices;
  train_indices.reserve(dataset.size() - test_indices.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    if (!is_test[i]) train_indices.push_back(i);
  }
  return TrainTestSplit{dataset.Subset(train_indices),
                        dataset.Subset(test_indices)};
}

}  // namespace

TrainTestSplit StratifiedSplit(const Dataset& dataset, double test_fraction,
                               Rng& rng) {
  std::vector<size_t> by_class[2];
  for (size_t i = 0; i < dataset.size(); ++i) {
    by_class[dataset.instance(i).label].push_back(i);
  }
  std::vector<size_t> test_indices;
  for (auto& idx : by_class) {
    std::vector<int> perm(idx.size());
    for (size_t i = 0; i < idx.size(); ++i) perm[i] = static_cast<int>(i);
    rng.Shuffle(perm);
    const size_t n_test =
        static_cast<size_t>(idx.size() * test_fraction + 0.5);
    for (size_t i = 0; i < n_test; ++i) test_indices.push_back(idx[perm[i]]);
  }
  std::sort(test_indices.begin(), test_indices.end());
  return SplitByIndices(dataset, test_indices);
}

TrainTestSplit RandomSplit(const Dataset& dataset, double test_fraction,
                           Rng& rng) {
  std::vector<int> perm = rng.Permutation(static_cast<int>(dataset.size()));
  const size_t n_test =
      static_cast<size_t>(dataset.size() * test_fraction + 0.5);
  std::vector<size_t> test_indices(perm.begin(), perm.begin() + n_test);
  std::sort(test_indices.begin(), test_indices.end());
  return SplitByIndices(dataset, test_indices);
}

Dataset Subsample(const Dataset& dataset, size_t max_size, Rng& rng) {
  if (dataset.size() <= max_size) return dataset;
  std::vector<int> perm = rng.Permutation(static_cast<int>(dataset.size()));
  std::vector<size_t> indices(perm.begin(), perm.begin() + max_size);
  std::sort(indices.begin(), indices.end());
  return dataset.Subset(indices);
}

}  // namespace ctfl
