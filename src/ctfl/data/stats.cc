#include "ctfl/data/stats.h"

#include "ctfl/util/string_util.h"

namespace ctfl {

std::string DatasetStats::FeatureTypeLabel() const {
  if (num_continuous == 0) return "discrete";
  if (num_discrete == 0) return "continuous";
  return "mixed";
}

DatasetStats ComputeStats(const std::string& name, const Dataset& dataset) {
  DatasetStats stats;
  stats.name = name;
  stats.num_instances = dataset.size();
  stats.num_features = dataset.schema()->num_features();
  stats.num_discrete = dataset.schema()->num_discrete();
  stats.num_continuous = dataset.schema()->num_continuous();
  stats.positive_rate = dataset.PositiveRate();
  return stats;
}

std::string FormatStatsRow(const DatasetStats& stats) {
  return StrFormat("%-12s %10zu %10d  %-10s  pos-rate=%.3f",
                   stats.name.c_str(), stats.num_instances,
                   stats.num_features, stats.FeatureTypeLabel().c_str(),
                   stats.positive_rate);
}

}  // namespace ctfl
