#ifndef CTFL_DATA_SCHEMA_H_
#define CTFL_DATA_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctfl/util/result.h"

namespace ctfl {

enum class FeatureType { kDiscrete, kContinuous };

/// Description of a single input feature.
///
/// Discrete features enumerate their category names (the federation fixes
/// the vocabulary up front, paper §V "Encode Input Features"); instances
/// store the category index. Continuous features carry their value domain
/// [lo, hi], which is the only distribution knowledge the privacy analysis
/// permits the federation to use when seeding binarization bounds.
struct FeatureSpec {
  std::string name;
  FeatureType type = FeatureType::kContinuous;
  std::vector<std::string> categories;  // discrete only
  double lo = 0.0;                      // continuous only
  double hi = 1.0;                      // continuous only

  int num_categories() const { return static_cast<int>(categories.size()); }
};

/// Immutable description of a classification task's feature space and
/// binary label names. Shared by every dataset/participant in a federation.
class FeatureSchema {
 public:
  FeatureSchema(std::vector<FeatureSpec> features,
                std::string negative_label, std::string positive_label)
      : features_(std::move(features)),
        label_names_{std::move(negative_label), std::move(positive_label)} {}

  static FeatureSpec Discrete(std::string name,
                              std::vector<std::string> categories) {
    FeatureSpec spec;
    spec.name = std::move(name);
    spec.type = FeatureType::kDiscrete;
    spec.categories = std::move(categories);
    return spec;
  }

  static FeatureSpec Continuous(std::string name, double lo, double hi) {
    FeatureSpec spec;
    spec.name = std::move(name);
    spec.type = FeatureType::kContinuous;
    spec.lo = lo;
    spec.hi = hi;
    return spec;
  }

  int num_features() const { return static_cast<int>(features_.size()); }
  const FeatureSpec& feature(int i) const { return features_[i]; }
  const std::vector<FeatureSpec>& features() const { return features_; }

  /// Label display name for class 0 (negative) / 1 (positive).
  const std::string& label_name(int label) const {
    return label_names_[label];
  }

  /// Index of the feature called `name`, or NotFound.
  Result<int> FeatureIndex(const std::string& name) const;

  /// Index of `category` within discrete feature `feature_index`.
  Result<int> CategoryIndex(int feature_index,
                            const std::string& category) const;

  int num_discrete() const;
  int num_continuous() const;

 private:
  std::vector<FeatureSpec> features_;
  std::string label_names_[2];
};

using SchemaPtr = std::shared_ptr<const FeatureSchema>;

/// Order-sensitive 64-bit fingerprint (FNV-1a) of a schema: feature names,
/// kinds, category vocabularies, continuous bounds (exact bit patterns),
/// and label names. Persistence formats embed it so that a model or bundle
/// saved against one schema is never silently loaded against another —
/// equal fingerprints mean byte-for-byte identical schema descriptions.
uint64_t SchemaFingerprint(const FeatureSchema& schema);

}  // namespace ctfl

#endif  // CTFL_DATA_SCHEMA_H_
