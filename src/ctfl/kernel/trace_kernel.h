#ifndef CTFL_KERNEL_TRACE_KERNEL_H_
#define CTFL_KERNEL_TRACE_KERNEL_H_

// Word-parallel blocked tracing kernel — the shared Eq. 4 matching engine
// behind ContributionTracer (core/) and store::QueryEngine.
//
// The scalar tau_w loop scores every (support set, training record) pair
// one rule bit at a time: |supp| Bitset::Test calls per candidate. This
// kernel instead packs each class bucket's training activations into a
// *transposed, rule-major bit-matrix* — one contiguous bitmap per rule
// over record index — so scoring becomes, per 64-record block,
// `overlap[lane] += weight` driven by word AND + ctz iteration: only
// *activated* (rule, record) pairs cost work, and 64 records share every
// rule-row load.
//
// Early-exit pruning processes the support rules in descending weight
// order keeping per-lane lower bounds; once the remaining (unprocessed)
// weight can no longer lift a lane over the threshold the lane is killed,
// and lanes whose lower bound already clears the threshold are accepted
// without scanning the rest (full-block accept). Blocks whose candidate
// mask is empty are skipped outright.
//
// Bit-identity contract (DESIGN.md §10): the kernel's accept/reject
// decisions are *exactly* those of the scalar loop, which accumulates
// weights in ascending rule order and compares with a fixed epsilon. The
// descending-order pruning bounds are only ever trusted outside a
// conservative float-drift band (`Support::safety`, a rigorous bound on
// the reordering error of a positive-term sum); lanes that land inside
// the band fall back to the scalar ascending-order comparison on the
// record's original activation bitset. Pruning therefore changes which
// records get *scanned*, never which records get *matched*.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ctfl/util/bitset.h"
#include "ctfl/util/result.h"

namespace ctfl {

/// Which Eq. 4 matching implementation a tracer / query engine uses. Both
/// produce bit-identical results; kLegacy is the scalar reference loop.
enum class TraceKernelKind {
  kLegacy,
  kBlocked,
};

/// Parses "legacy" / "blocked" (the CLI --trace-kernel values).
Result<TraceKernelKind> ParseTraceKernelKind(const std::string& name);
const char* TraceKernelKindName(TraceKernelKind kind);

/// Work accounting of one (or many accumulated) Match calls.
struct TraceKernelStats {
  /// Candidate records in blocks the kernel actually entered (every such
  /// record is counted once, whether it was decided early or scanned to
  /// the end). Always <= the number of candidates submitted.
  int64_t records_scanned = 0;
  /// 64-record blocks skipped without per-lane work (empty candidate
  /// mask) plus blocks whose lane scan ended before the full support was
  /// processed (all lanes decided early).
  int64_t blocks_pruned = 0;
  /// Lanes whose pruning bounds landed inside the float-drift band and
  /// were re-decided by the exact scalar comparison (rare).
  int64_t exact_fallbacks = 0;
};

/// Transposed, cache-blocked activation bit-matrix over one class bucket
/// plus the pruned matcher. Records are addressed by their *bucket
/// position* (0..num_records), in the same order the scalar loop scans
/// them, so lane order == legacy match order.
class TraceKernel {
 public:
  TraceKernel() = default;

  /// Packs `records` (activation bitsets in bucket order, each `num_rules`
  /// wide) into the rule-major bit-matrix. The pointed-to bitsets must
  /// outlive the kernel: they back the exact ambiguous-lane fallback.
  TraceKernel(std::vector<const Bitset*> records, int num_rules);

  size_t num_records() const { return records_.size(); }
  size_t num_blocks() const { return num_blocks_; }
  int num_rules() const { return num_rules_; }
  bool empty() const { return records_.empty(); }

  /// Transposed row of rule `rule`: num_blocks() words; bit `i` of word
  /// `b` is set iff record `b * 64 + i` activates the rule. Callers use
  /// this for word-driven frequency accumulation over matched lanes.
  const uint64_t* rule_bits(int rule) const {
    return bits_.data() + static_cast<size_t>(rule) * num_blocks_;
  }

  /// How the exact (legacy-identical) accept decision is phrased.
  enum class Cmp {
    /// Accept iff !(overlap < threshold) — the tracer / query-engine
    /// Eq. 4 comparison (threshold already carries its kRatioEps slack).
    kGeThreshold,
    /// Accept iff (overlap + eps >= threshold) — the Max-Miner
    /// group-prefilter comparison (theta check).
    kPlusEpsGe,
  };

  /// A support set prepared for matching. `rules`/`weights` keep the
  /// caller's ascending rule order (the exact-fallback accumulation
  /// order); `order` re-sorts them by descending weight for pruning.
  struct Support {
    std::vector<int> rules;        ///< ascending rule coordinates
    std::vector<double> weights;   ///< aligned to `rules`
    std::vector<int> sorted_rules; ///< descending weight, rule tie-break
    std::vector<double> sorted_weights;
    /// suffix[i] = sum of sorted_weights[i..] (suffix[m] = 0): the weight
    /// still unprocessed before sorted rule i — deterministic, fixed
    /// accumulation order, independent of any pruning decision.
    std::vector<double> suffix;
    Cmp cmp = Cmp::kGeThreshold;
    double threshold = 0.0;  ///< exact comparison value
    double eps = 0.0;        ///< kPlusEpsGe only
    /// Band center for pruning decisions (threshold, shifted by -eps for
    /// kPlusEpsGe) and the conservative float-drift half-width around it.
    double pivot = 0.0;
    double safety = 0.0;
  };

  /// Builds a Support from `supp` (ascending (rule, weight) pairs — the
  /// scalar loop's iteration order). For kGeThreshold, `threshold` is the
  /// exact comparison value (e.g. tau_w * weight_sum - kRatioEps); for
  /// kPlusEpsGe it is the raw theta and `eps` the slack added to overlap.
  static Support Prepare(const std::vector<std::pair<int, double>>& supp,
                         double threshold, Cmp cmp = Cmp::kGeThreshold,
                         double eps = 0.0);

  /// Matches every record (or only those in `candidate_mask`, a
  /// num_blocks()-word lane bitmap; nullptr = all records) against the
  /// support. Sets matched-lane bits in `out_related` (num_blocks()
  /// words, overwritten) and returns the match count. Decisions are
  /// bit-identical to the scalar ascending-order loop. `stats` (optional)
  /// accumulates work accounting.
  size_t Match(const Support& support, const uint64_t* candidate_mask,
               uint64_t* out_related, TraceKernelStats* stats) const;

 private:
  /// Scalar reference decision for one record (ascending accumulation).
  bool ExactRelated(const Support& support, size_t record) const;

  std::vector<const Bitset*> records_;
  int num_rules_ = 0;
  size_t num_blocks_ = 0;
  /// Rule-major: bits_[rule * num_blocks_ + block].
  std::vector<uint64_t> bits_;
  /// Valid-lane mask per block (all ones except the trailing block).
  std::vector<uint64_t> full_mask_;
};

}  // namespace ctfl

#endif  // CTFL_KERNEL_TRACE_KERNEL_H_
