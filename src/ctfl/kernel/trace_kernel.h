#ifndef CTFL_KERNEL_TRACE_KERNEL_H_
#define CTFL_KERNEL_TRACE_KERNEL_H_

// Word-parallel blocked tracing kernel — the shared Eq. 4 matching engine
// behind ContributionTracer (core/) and store::QueryEngine.
//
// The scalar tau_w loop scores every (support set, training record) pair
// one rule bit at a time: |supp| Bitset::Test calls per candidate. This
// kernel instead packs each class bucket's training activations into a
// *transposed, rule-major bit-matrix* — one contiguous bitmap per rule
// over record index — so scoring becomes, per 64-record block,
// `overlap[lane] += weight` driven by word AND + lane accumulation: only
// *activated* (rule, record) pairs cost work, and 64 records share every
// rule-row load.
//
// Three independent accelerations compose on top (DESIGN.md §10):
//
//  - Tiling: the bit-matrix is stored tile-major — blocks are grouped
//    into fixed-width tiles and all rule rows of one tile are contiguous —
//    so a full support-set sweep over one block stripe touches an
//    L2-resident working set instead of striding num_blocks words between
//    rules.
//  - SIMD: per-ISA translation units (scalar / AVX2 / AVX-512 / NEON,
//    util/cpu_features.h) evaluate the 64 per-lane accumulators and the
//    checkpoint comparisons with vector masked adds and compares. Which
//    tier runs is selected once per process (CTFL_TRACE_ISA /
//    --trace-isa) or per call via TraceMatchOptions.
//  - Sharding: Match splits the block range into tile-aligned stripes
//    across the shared util/thread_pool. Stripes own disjoint out_related
//    words, and per-stripe stats are committed in ascending stripe order,
//    so results and stats are independent of the worker schedule.
//
// Early-exit pruning processes the support rules in descending weight
// order keeping per-lane lower bounds; once the remaining (unprocessed)
// weight can no longer lift a lane over the threshold the lane is killed,
// and lanes whose lower bound already clears the threshold are accepted
// without scanning the rest (full-block accept). Blocks whose candidate
// mask is empty are skipped outright.
//
// Bit-identity contract (DESIGN.md §10): the kernel's accept/reject
// decisions are *exactly* those of the scalar loop, which accumulates
// weights in ascending rule order and compares with a fixed epsilon — on
// every ISA tier at every thread count. The descending-order pruning
// bounds are only ever trusted outside a conservative float-drift band
// (`Support::safety`, a rigorous bound on the reordering error of a
// positive-term sum); lanes that land inside the band fall back to the
// scalar ascending-order comparison on the record's original activation
// bitset. Pruning therefore changes which records get *scanned*, never
// which records get *matched*.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ctfl/util/bitset.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/result.h"

namespace ctfl {

/// Which Eq. 4 matching implementation a tracer / query engine uses. Both
/// produce bit-identical results; kLegacy is the scalar reference loop.
enum class TraceKernelKind {
  kLegacy,
  kBlocked,
};

/// Parses "legacy" / "blocked" (the CLI --trace-kernel values).
Result<TraceKernelKind> ParseTraceKernelKind(const std::string& name);
const char* TraceKernelKindName(TraceKernelKind kind);

/// Work accounting of one (or many accumulated) Match calls.
struct TraceKernelStats {
  /// Candidate records in blocks the kernel actually entered (every such
  /// record is counted once, whether it was decided early or scanned to
  /// the end). Always <= the number of candidates submitted.
  int64_t records_scanned = 0;
  /// 64-record blocks skipped without per-lane work (empty candidate
  /// mask) plus blocks whose lane scan ended before the full support was
  /// processed (all lanes decided early).
  int64_t blocks_pruned = 0;
  /// Lanes whose pruning bounds landed inside the float-drift band and
  /// were re-decided by the exact scalar comparison (rare).
  int64_t exact_fallbacks = 0;
};

/// Per-call implementation selectors of Match. Both knobs are pure
/// implementation choices: results and stats are bit-identical at every
/// (isa, threads) combination.
struct TraceMatchOptions {
  /// SIMD tier; defaults to the process-wide selection.
  TraceIsa isa = CurrentTraceIsa();
  /// Worker threads sharding the block range (1 = serial, 0 = hardware
  /// concurrency). Runs serial when called from inside a pool worker.
  int threads = 1;
};

/// Transposed, cache-blocked activation bit-matrix over one class bucket
/// plus the pruned matcher. Records are addressed by their *bucket
/// position* (0..num_records), in the same order the scalar loop scans
/// them, so lane order == legacy match order.
class TraceKernel {
 public:
  TraceKernel() = default;

  /// Packs `records` (activation bitsets in bucket order, each `num_rules`
  /// wide) into the tile-major bit-matrix. The pointed-to bitsets must
  /// outlive the kernel: they back the exact ambiguous-lane fallback.
  TraceKernel(std::vector<const Bitset*> records, int num_rules);

  size_t num_records() const { return records_.size(); }
  size_t num_blocks() const { return num_blocks_; }
  int num_rules() const { return num_rules_; }
  bool empty() const { return records_.empty(); }
  /// Blocks per cache tile (a power of two; sized so one full support
  /// sweep over a tile stripe stays L2-resident).
  size_t tile_blocks() const { return tile_blocks_; }

  /// Word `block` of rule `rule`'s transposed row: bit `i` is set iff
  /// record `block * 64 + i` activates the rule. Callers use this for
  /// word-driven frequency accumulation over matched lanes.
  uint64_t rule_word(int rule, size_t block) const {
    return bits_[WordIndex(static_cast<size_t>(rule), block)];
  }

  /// Valid-lane mask of `block` (all ones except the trailing block).
  uint64_t full_mask_word(size_t block) const { return full_mask_[block]; }

  /// How the exact (legacy-identical) accept decision is phrased.
  enum class Cmp {
    /// Accept iff !(overlap < threshold) — the tracer / query-engine
    /// Eq. 4 comparison (threshold already carries its kRatioEps slack).
    kGeThreshold,
    /// Accept iff (overlap + eps >= threshold) — the Max-Miner
    /// group-prefilter comparison (theta check).
    kPlusEpsGe,
  };

  /// A support set prepared for matching. `rules`/`weights` keep the
  /// caller's ascending rule order (the exact-fallback accumulation
  /// order); `order` re-sorts them by descending weight for pruning.
  struct Support {
    std::vector<int> rules;        ///< ascending rule coordinates
    std::vector<double> weights;   ///< aligned to `rules`
    std::vector<int> sorted_rules; ///< descending weight, rule tie-break
    std::vector<double> sorted_weights;
    /// suffix[i] = sum of sorted_weights[i..] (suffix[m] = 0): the weight
    /// still unprocessed before sorted rule i — deterministic, fixed
    /// accumulation order, independent of any pruning decision.
    std::vector<double> suffix;
    Cmp cmp = Cmp::kGeThreshold;
    double threshold = 0.0;  ///< exact comparison value
    double eps = 0.0;        ///< kPlusEpsGe only
    /// Band center for pruning decisions (threshold, shifted by -eps for
    /// kPlusEpsGe) and the conservative float-drift half-width around it.
    double pivot = 0.0;
    double safety = 0.0;
  };

  /// Builds a Support from `supp` (ascending (rule, weight) pairs — the
  /// scalar loop's iteration order). For kGeThreshold, `threshold` is the
  /// exact comparison value (e.g. tau_w * weight_sum - kRatioEps); for
  /// kPlusEpsGe it is the raw theta and `eps` the slack added to overlap.
  static Support Prepare(const std::vector<std::pair<int, double>>& supp,
                         double threshold, Cmp cmp = Cmp::kGeThreshold,
                         double eps = 0.0);

  /// Matches every record (or only those in `candidate_mask`, a
  /// num_blocks()-word lane bitmap; nullptr = all records) against the
  /// support. Sets matched-lane bits in `out_related` (num_blocks()
  /// words, overwritten) and returns the match count. Decisions are
  /// bit-identical to the scalar ascending-order loop. `stats` (optional)
  /// accumulates work accounting.
  size_t Match(const Support& support, const uint64_t* candidate_mask,
               uint64_t* out_related, TraceKernelStats* stats) const {
    return Match(support, candidate_mask, out_related, stats,
                 TraceMatchOptions());
  }

  /// Same, with explicit ISA tier + thread sharding. Results and stats
  /// are bit-identical across every (isa, threads) combination.
  size_t Match(const Support& support, const uint64_t* candidate_mask,
               uint64_t* out_related, TraceKernelStats* stats,
               const TraceMatchOptions& options) const;

  /// Scalar reference decision for one record (ascending accumulation) —
  /// the exact fallback for lanes inside the float-drift band, exposed
  /// for the per-ISA stripe kernels and differential tests.
  bool ExactRelated(const Support& support, size_t record) const;

 private:
  size_t WordIndex(size_t rule, size_t block) const {
    const size_t tile = block >> tile_shift_;
    return ((tile * static_cast<size_t>(num_rules_) + rule)
            << tile_shift_) +
           (block & (tile_blocks_ - 1));
  }

  std::vector<const Bitset*> records_;
  int num_rules_ = 0;
  size_t num_blocks_ = 0;
  /// Blocks per tile (power of two) and its log2. The trailing tile is
  /// zero-padded to the full width so WordIndex needs no bounds logic.
  size_t tile_blocks_ = 1;
  int tile_shift_ = 0;
  size_t num_tiles_ = 0;
  /// Tile-major: bits_[((tile * num_rules + rule) << tile_shift) + j]
  /// holds word `tile * tile_blocks + j` of `rule`'s transposed row.
  std::vector<uint64_t> bits_;
  /// Valid-lane mask per block (all ones except the trailing block).
  std::vector<uint64_t> full_mask_;
};

namespace kernel_detail {

/// Result of one stripe sweep: matches found + the stripe's stats.
struct StripeResult {
  size_t related = 0;
  TraceKernelStats stats;
};

/// One contiguous block range [block_lo, block_hi) of a Match call. Every
/// implementation writes out_related[b] for each b in range (zeroing
/// non-candidate blocks) and returns bit-identical decisions and stats.
using StripeFn = StripeResult (*)(const TraceKernel& kernel,
                                  const TraceKernel::Support& support,
                                  const uint64_t* candidate_mask,
                                  uint64_t* out_related, size_t block_lo,
                                  size_t block_hi);

StripeResult MatchStripeScalar(const TraceKernel& kernel,
                               const TraceKernel::Support& support,
                               const uint64_t* candidate_mask,
                               uint64_t* out_related, size_t block_lo,
                               size_t block_hi);
/// Compiled from per-ISA translation units; on architectures where the
/// tier does not exist they forward to MatchStripeScalar (the dispatch
/// layer never selects an unavailable tier, this is belt-and-braces).
StripeResult MatchStripeAvx2(const TraceKernel& kernel,
                             const TraceKernel::Support& support,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi);
StripeResult MatchStripeAvx512(const TraceKernel& kernel,
                               const TraceKernel::Support& support,
                               const uint64_t* candidate_mask,
                               uint64_t* out_related, size_t block_lo,
                               size_t block_hi);
StripeResult MatchStripeNeon(const TraceKernel& kernel,
                             const TraceKernel::Support& support,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi);

}  // namespace kernel_detail

}  // namespace ctfl

#endif  // CTFL_KERNEL_TRACE_KERNEL_H_
