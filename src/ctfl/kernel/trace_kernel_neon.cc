// NEON stripe kernel: 32 groups of 2 f64 lanes per 64-record block.
// AArch64 NEON is baseline, so no extra compile flags are needed; the
// tier is still behind runtime dispatch (util/cpu_features.h) for
// symmetry with the x86 tiers.
//
// Bit-identity to the scalar tier (trace_kernel_stripe.h contract):
//  - Accumulate adds `weight AND lane_hit_mask` per group — exactly
//    `weight` on set lanes and +0.0 on unset lanes, a bitwise no-op on
//    the non-negative accumulators.
//  - Compare primitives evaluate the same expressions in the same
//    association order; vcgeq/vcltq match scalar >=/< on the never-NaN
//    inputs.

#include "ctfl/kernel/trace_kernel_stripe.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <array>

namespace ctfl {
namespace kernel_detail {
namespace {

constexpr std::array<uint64_t, 64> MakeLaneBits() {
  std::array<uint64_t, 64> bits{};
  for (int i = 0; i < 64; ++i) bits[i] = uint64_t{1} << i;
  return bits;
}
alignas(16) constexpr std::array<uint64_t, 64> kLaneBit = MakeLaneBits();

// Below this population the scalar ctz loop wins; per-lane adds are
// identical either way.
constexpr int kSparseLanes = 8;

struct NeonOps {
  static void Accumulate(double* lb, uint64_t word, double weight) {
    if (word == 0) return;
    if (std::popcount(word) <= kSparseLanes) {
      ScalarAccumulate(lb, word, weight);
      return;
    }
    const float64x2_t wv = vdupq_n_f64(weight);
    const uint64x2_t wordv = vdupq_n_u64(word);
    for (int g = 0; g < 32; ++g) {
      const uint64x2_t sel = vld1q_u64(kLaneBit.data() + 2 * g);
      const uint64x2_t hit = vceqq_u64(vandq_u64(wordv, sel), sel);
      const float64x2_t add =
          vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(wv), hit));
      const float64x2_t cur = vld1q_f64(lb + 2 * g);
      vst1q_f64(lb + 2 * g, vaddq_f64(cur, add));
    }
  }

  static uint64_t GeMask(const double* lb, double bound, uint64_t scan) {
    if (scan == 0) return 0;
    const float64x2_t bv = vdupq_n_f64(bound);
    uint64_t mask = 0;
    for (int g = 0; g < 32; ++g) {
      const uint64x2_t ge = vcgeq_f64(vld1q_f64(lb + 2 * g), bv);
      mask |= (vgetq_lane_u64(ge, 0) & 1) << (2 * g);
      mask |= (vgetq_lane_u64(ge, 1) & 1) << (2 * g + 1);
    }
    return mask;
  }

  static uint64_t SumLtMask(const double* lb, double remaining,
                            double safety, double pivot, uint64_t scan) {
    if (scan == 0) return 0;
    const float64x2_t rv = vdupq_n_f64(remaining);
    const float64x2_t sv = vdupq_n_f64(safety);
    const float64x2_t pv = vdupq_n_f64(pivot);
    uint64_t mask = 0;
    for (int g = 0; g < 32; ++g) {
      // ((lb + remaining) + safety) < pivot — scalar association order.
      const float64x2_t sum =
          vaddq_f64(vaddq_f64(vld1q_f64(lb + 2 * g), rv), sv);
      const uint64x2_t lt = vcltq_f64(sum, pv);
      mask |= (vgetq_lane_u64(lt, 0) & 1) << (2 * g);
      mask |= (vgetq_lane_u64(lt, 1) & 1) << (2 * g + 1);
    }
    return mask;
  }

  static uint64_t AddLtMask(const double* lb, double safety, double pivot,
                            uint64_t scan) {
    if (scan == 0) return 0;
    const float64x2_t sv = vdupq_n_f64(safety);
    const float64x2_t pv = vdupq_n_f64(pivot);
    uint64_t mask = 0;
    for (int g = 0; g < 32; ++g) {
      const float64x2_t sum = vaddq_f64(vld1q_f64(lb + 2 * g), sv);
      const uint64x2_t lt = vcltq_f64(sum, pv);
      mask |= (vgetq_lane_u64(lt, 0) & 1) << (2 * g);
      mask |= (vgetq_lane_u64(lt, 1) & 1) << (2 * g + 1);
    }
    return mask;
  }
};

}  // namespace

StripeResult MatchStripeNeon(const TraceKernel& kernel,
                             const TraceKernel::Support& support,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi) {
  return MatchStripeImpl<NeonOps>(kernel, support, candidate_mask,
                                  out_related, block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl

#else  // !aarch64: tier never selected; keep the symbol defined.

namespace ctfl {
namespace kernel_detail {

StripeResult MatchStripeNeon(const TraceKernel& kernel,
                             const TraceKernel::Support& support,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi) {
  return MatchStripeScalar(kernel, support, candidate_mask, out_related,
                           block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl

#endif
