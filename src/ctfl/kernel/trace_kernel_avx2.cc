// AVX2 stripe kernel: 16 groups of 4 f64 lanes per 64-record block.
// Compiled with -mavx2 on x86-64 (see src/CMakeLists.txt); selected at
// runtime only when cpuid reports AVX2 (util/cpu_features.h).
//
// Bit-identity to the scalar tier (trace_kernel_stripe.h contract):
//  - Accumulate adds `and_pd(weight, lane_hit_mask)` to each group —
//    exactly `weight` on set lanes and +0.0 on unset lanes, which is a
//    bitwise no-op on the non-negative accumulators.
//  - The compare primitives evaluate the same expressions in the same
//    association order with one vector instruction per step; _CMP_*_OQ
//    matches scalar </>= on the never-NaN inputs.

#include "ctfl/kernel/trace_kernel_stripe.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <array>

namespace ctfl {
namespace kernel_detail {
namespace {

constexpr std::array<uint64_t, 64> MakeLaneBits() {
  std::array<uint64_t, 64> bits{};
  for (int i = 0; i < 64; ++i) bits[i] = uint64_t{1} << i;
  return bits;
}
alignas(32) constexpr std::array<uint64_t, 64> kLaneBit = MakeLaneBits();

// Words with few set lanes take the scalar ctz loop: per-lane adds are
// identical either way, and 3 adds beat 16 vector ops.
constexpr int kSparseLanes = 8;

struct Avx2Ops {
  static void Accumulate(double* lb, uint64_t word, double weight) {
    if (word == 0) return;
    if (std::popcount(word) <= kSparseLanes) {
      ScalarAccumulate(lb, word, weight);
      return;
    }
    const __m256d wv = _mm256_set1_pd(weight);
    const __m256i wordv = _mm256_set1_epi64x(static_cast<long long>(word));
    for (int g = 0; g < 16; ++g) {
      const __m256i sel = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kLaneBit.data() + 4 * g));
      const __m256i hit =
          _mm256_cmpeq_epi64(_mm256_and_si256(wordv, sel), sel);
      const __m256d add = _mm256_and_pd(wv, _mm256_castsi256_pd(hit));
      const __m256d cur = _mm256_load_pd(lb + 4 * g);
      _mm256_store_pd(lb + 4 * g, _mm256_add_pd(cur, add));
    }
  }

  static uint64_t GeMask(const double* lb, double bound, uint64_t scan) {
    if (scan == 0) return 0;
    const __m256d bv = _mm256_set1_pd(bound);
    uint64_t mask = 0;
    for (int g = 0; g < 16; ++g) {
      const __m256d ge =
          _mm256_cmp_pd(_mm256_load_pd(lb + 4 * g), bv, _CMP_GE_OQ);
      mask |= static_cast<uint64_t>(_mm256_movemask_pd(ge)) << (4 * g);
    }
    return mask;
  }

  static uint64_t SumLtMask(const double* lb, double remaining,
                            double safety, double pivot, uint64_t scan) {
    if (scan == 0) return 0;
    const __m256d rv = _mm256_set1_pd(remaining);
    const __m256d sv = _mm256_set1_pd(safety);
    const __m256d pv = _mm256_set1_pd(pivot);
    uint64_t mask = 0;
    for (int g = 0; g < 16; ++g) {
      // ((lb + remaining) + safety) < pivot — scalar association order.
      const __m256d sum = _mm256_add_pd(
          _mm256_add_pd(_mm256_load_pd(lb + 4 * g), rv), sv);
      const __m256d lt = _mm256_cmp_pd(sum, pv, _CMP_LT_OQ);
      mask |= static_cast<uint64_t>(_mm256_movemask_pd(lt)) << (4 * g);
    }
    return mask;
  }

  static uint64_t AddLtMask(const double* lb, double safety, double pivot,
                            uint64_t scan) {
    if (scan == 0) return 0;
    const __m256d sv = _mm256_set1_pd(safety);
    const __m256d pv = _mm256_set1_pd(pivot);
    uint64_t mask = 0;
    for (int g = 0; g < 16; ++g) {
      const __m256d sum = _mm256_add_pd(_mm256_load_pd(lb + 4 * g), sv);
      const __m256d lt = _mm256_cmp_pd(sum, pv, _CMP_LT_OQ);
      mask |= static_cast<uint64_t>(_mm256_movemask_pd(lt)) << (4 * g);
    }
    return mask;
  }
};

}  // namespace

StripeResult MatchStripeAvx2(const TraceKernel& kernel,
                             const TraceKernel::Support& support,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi) {
  return MatchStripeImpl<Avx2Ops>(kernel, support, candidate_mask,
                                  out_related, block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl

#else  // !x86: tier never selected; keep the symbol defined.

namespace ctfl {
namespace kernel_detail {

StripeResult MatchStripeAvx2(const TraceKernel& kernel,
                             const TraceKernel::Support& support,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi) {
  return MatchStripeScalar(kernel, support, candidate_mask, out_related,
                           block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl

#endif
