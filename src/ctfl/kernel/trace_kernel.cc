#include "ctfl/kernel/trace_kernel.h"

#include <algorithm>
#include <bit>
#include <cfloat>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>

#include "ctfl/util/logging.h"
#include "ctfl/util/thread_pool.h"

namespace ctfl {
namespace {

// One tile stripe (num_rules transposed rows x tile_blocks words) should
// stay L2-resident across a full support-set sweep; budget ~1 MiB and
// round down to a power of two so block -> (tile, offset) is shift/mask.
size_t PickTileBlocks(int num_rules) {
  const size_t budget_words = (size_t{1} << 20) / sizeof(uint64_t);
  const size_t per_rule =
      budget_words / static_cast<size_t>(std::max(num_rules, 1));
  return std::clamp<size_t>(std::bit_floor(std::max<size_t>(per_rule, 1)),
                            16, size_t{1} << 16);
}

kernel_detail::StripeFn ResolveStripeFn(TraceIsa isa) {
  switch (isa) {
    case TraceIsa::kAvx512:
      return kernel_detail::MatchStripeAvx512;
    case TraceIsa::kAvx2:
      return kernel_detail::MatchStripeAvx2;
    case TraceIsa::kNeon:
      return kernel_detail::MatchStripeNeon;
    case TraceIsa::kScalar:
      return kernel_detail::MatchStripeScalar;
  }
  return kernel_detail::MatchStripeScalar;
}

// Shared stripe-sharding pool, rebuilt when the requested size changes
// (same idiom as the matrix kernels' MatrixParallelPool).
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu
int g_pool_size = 0;                 // guarded by g_pool_mu

ThreadPool* MatchParallelPool(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || g_pool_size != threads) {
    g_pool.reset();  // join the old workers before resizing
    g_pool = std::make_unique<ThreadPool>(threads);
    g_pool_size = threads;
  }
  return g_pool.get();
}

}  // namespace

Result<TraceKernelKind> ParseTraceKernelKind(const std::string& name) {
  if (name == "legacy") return TraceKernelKind::kLegacy;
  if (name == "blocked") return TraceKernelKind::kBlocked;
  return Status::InvalidArgument("unknown trace kernel '" + name +
                                 "' (expected legacy|blocked)");
}

const char* TraceKernelKindName(TraceKernelKind kind) {
  return kind == TraceKernelKind::kLegacy ? "legacy" : "blocked";
}

TraceKernel::TraceKernel(std::vector<const Bitset*> records, int num_rules)
    : records_(std::move(records)),
      num_rules_(num_rules),
      num_blocks_((records_.size() + 63) / 64) {
  CTFL_CHECK(num_rules_ >= 0);
  tile_blocks_ = PickTileBlocks(num_rules_);
  tile_shift_ = std::countr_zero(tile_blocks_);
  num_tiles_ = (num_blocks_ + tile_blocks_ - 1) / tile_blocks_;
  // Trailing tile zero-padded to the full width: WordIndex stays pure
  // shift/mask arithmetic with no tail special-case.
  bits_.assign(num_tiles_ * static_cast<size_t>(num_rules_) * tile_blocks_,
               0);
  full_mask_.assign(num_blocks_, 0);
  for (size_t r = 0; r < records_.size(); ++r) {
    CTFL_CHECK(records_[r] != nullptr);
    CTFL_CHECK(records_[r]->size() == static_cast<size_t>(num_rules_));
    const size_t block = r / 64;
    const uint64_t lane = 1ULL << (r % 64);
    full_mask_[block] |= lane;
    records_[r]->ForEachSetBit([&](size_t rule) {
      bits_[WordIndex(rule, block)] |= lane;
    });
  }
}

TraceKernel::Support TraceKernel::Prepare(
    const std::vector<std::pair<int, double>>& supp, double threshold,
    Cmp cmp, double eps) {
  Support s;
  s.cmp = cmp;
  s.threshold = threshold;
  s.eps = eps;
  const size_t m = supp.size();
  s.rules.reserve(m);
  s.weights.reserve(m);
  double weight_sum = 0.0;
  for (const auto& [rule, weight] : supp) {
    s.rules.push_back(rule);
    s.weights.push_back(weight);
    weight_sum += weight;
  }
  // Descending weight, ascending rule tie-break: deterministic pruning
  // order regardless of the caller's float quirks.
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&s](size_t a, size_t b) {
    if (s.weights[a] != s.weights[b]) return s.weights[a] > s.weights[b];
    return s.rules[a] < s.rules[b];
  });
  s.sorted_rules.resize(m);
  s.sorted_weights.resize(m);
  for (size_t i = 0; i < m; ++i) {
    s.sorted_rules[i] = s.rules[order[i]];
    s.sorted_weights[i] = s.weights[order[i]];
  }
  // Fixed-order suffix sums: the upper-bound weights used for pruning are
  // computed once here, independent of any pruning decision.
  s.suffix.assign(m + 1, 0.0);
  for (size_t i = m; i-- > 0;) {
    s.suffix[i] = s.suffix[i + 1] + s.sorted_weights[i];
  }
  // Band center: the exact comparison accepts when the ascending-order
  // overlap reaches (roughly) this value.
  s.pivot = cmp == Cmp::kGeThreshold ? threshold : threshold - eps;
  // Conservative bound on the float drift between any two summation
  // orders of <= m positive terms bounded by weight_sum, plus the
  // comparison's own rounding: 2(m-1)*u*S covers the reordering error
  // rigorously; the (m + 4) * 4 * DBL_EPSILON factor leaves a wide
  // margin. Lanes inside +-safety of the pivot are re-decided exactly.
  const double scale =
      weight_sum + std::abs(threshold) + std::abs(eps) + 1.0;
  s.safety = scale * static_cast<double>(m + 4) * 4.0 * DBL_EPSILON;
  return s;
}

bool TraceKernel::ExactRelated(const Support& s, size_t record) const {
  const Bitset& act = *records_[record];
  double overlap = 0.0;
  const size_t m = s.rules.size();
  for (size_t i = 0; i < m; ++i) {
    // Ascending rule order — the scalar reference accumulation.
    if (act.Test(static_cast<size_t>(s.rules[i]))) overlap += s.weights[i];
  }
  if (s.cmp == Cmp::kGeThreshold) return !(overlap < s.threshold);
  return overlap + s.eps >= s.threshold;
}

size_t TraceKernel::Match(const Support& s, const uint64_t* candidate_mask,
                          uint64_t* out_related, TraceKernelStats* stats,
                          const TraceMatchOptions& options) const {
  const size_t nb = num_blocks_;
  if (nb == 0) return 0;
  const kernel_detail::StripeFn stripe = ResolveStripeFn(options.isa);

  // Tile-aligned sharding: every stripe's bit-matrix slice is contiguous
  // and no two stripes share an out_related word. 64 blocks (4096 lanes)
  // is the minimum worth a pool task.
  constexpr size_t kMinBlocksPerShard = 64;
  size_t shards = 1;
  if (options.threads != 1 && !ThreadPool::InPoolWorker()) {
    const int threads = ResolveThreadCount(options.threads);
    const size_t cap = std::max<size_t>(nb / kMinBlocksPerShard, 1);
    shards = std::min({static_cast<size_t>(std::max(threads, 1)),
                       num_tiles_, cap});
  }

  if (shards <= 1) {
    const kernel_detail::StripeResult r =
        stripe(*this, s, candidate_mask, out_related, 0, nb);
    if (stats != nullptr) {
      stats->records_scanned += r.stats.records_scanned;
      stats->blocks_pruned += r.stats.blocks_pruned;
      stats->exact_fallbacks += r.stats.exact_fallbacks;
    }
    return r.related;
  }

  const size_t tiles_per_shard = (num_tiles_ + shards - 1) / shards;
  const size_t blocks_per_shard = tiles_per_shard * tile_blocks_;
  std::vector<kernel_detail::StripeResult> results(shards);
  MatchParallelPool(static_cast<int>(shards))
      ->ParallelFor(0, shards, [&](size_t i) {
        const size_t lo = std::min(nb, i * blocks_per_shard);
        const size_t hi = std::min(nb, lo + blocks_per_shard);
        if (lo < hi) {
          results[i] =
              stripe(*this, s, candidate_mask, out_related, lo, hi);
        }
      });
  // Ordered commit (DESIGN.md §10): lane decisions land in disjoint
  // out_related words per stripe, and stats are folded in ascending
  // stripe order on this thread — totals are integer sums either way,
  // so results and stats are independent of the worker schedule and
  // identical to the serial sweep.
  size_t total_related = 0;
  for (const kernel_detail::StripeResult& r : results) {
    total_related += r.related;
    if (stats != nullptr) {
      stats->records_scanned += r.stats.records_scanned;
      stats->blocks_pruned += r.stats.blocks_pruned;
      stats->exact_fallbacks += r.stats.exact_fallbacks;
    }
  }
  return total_related;
}

}  // namespace ctfl
