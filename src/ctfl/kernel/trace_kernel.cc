#include "ctfl/kernel/trace_kernel.h"

#include <algorithm>
#include <bit>
#include <cfloat>
#include <numeric>

#include "ctfl/util/logging.h"

namespace ctfl {

Result<TraceKernelKind> ParseTraceKernelKind(const std::string& name) {
  if (name == "legacy") return TraceKernelKind::kLegacy;
  if (name == "blocked") return TraceKernelKind::kBlocked;
  return Status::InvalidArgument("unknown trace kernel '" + name +
                                 "' (expected legacy|blocked)");
}

const char* TraceKernelKindName(TraceKernelKind kind) {
  return kind == TraceKernelKind::kLegacy ? "legacy" : "blocked";
}

TraceKernel::TraceKernel(std::vector<const Bitset*> records, int num_rules)
    : records_(std::move(records)),
      num_rules_(num_rules),
      num_blocks_((records_.size() + 63) / 64) {
  CTFL_CHECK(num_rules_ >= 0);
  bits_.assign(static_cast<size_t>(num_rules_) * num_blocks_, 0);
  full_mask_.assign(num_blocks_, 0);
  for (size_t r = 0; r < records_.size(); ++r) {
    CTFL_CHECK(records_[r] != nullptr);
    CTFL_CHECK(records_[r]->size() == static_cast<size_t>(num_rules_));
    const size_t block = r / 64;
    const uint64_t lane = 1ULL << (r % 64);
    full_mask_[block] |= lane;
    records_[r]->ForEachSetBit([&](size_t rule) {
      bits_[rule * num_blocks_ + block] |= lane;
    });
  }
}

TraceKernel::Support TraceKernel::Prepare(
    const std::vector<std::pair<int, double>>& supp, double threshold,
    Cmp cmp, double eps) {
  Support s;
  s.cmp = cmp;
  s.threshold = threshold;
  s.eps = eps;
  const size_t m = supp.size();
  s.rules.reserve(m);
  s.weights.reserve(m);
  double weight_sum = 0.0;
  for (const auto& [rule, weight] : supp) {
    s.rules.push_back(rule);
    s.weights.push_back(weight);
    weight_sum += weight;
  }
  // Descending weight, ascending rule tie-break: deterministic pruning
  // order regardless of the caller's float quirks.
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&s](size_t a, size_t b) {
    if (s.weights[a] != s.weights[b]) return s.weights[a] > s.weights[b];
    return s.rules[a] < s.rules[b];
  });
  s.sorted_rules.resize(m);
  s.sorted_weights.resize(m);
  for (size_t i = 0; i < m; ++i) {
    s.sorted_rules[i] = s.rules[order[i]];
    s.sorted_weights[i] = s.weights[order[i]];
  }
  // Fixed-order suffix sums: the upper-bound weights used for pruning are
  // computed once here, independent of any pruning decision.
  s.suffix.assign(m + 1, 0.0);
  for (size_t i = m; i-- > 0;) {
    s.suffix[i] = s.suffix[i + 1] + s.sorted_weights[i];
  }
  // Band center: the exact comparison accepts when the ascending-order
  // overlap reaches (roughly) this value.
  s.pivot = cmp == Cmp::kGeThreshold ? threshold : threshold - eps;
  // Conservative bound on the float drift between any two summation
  // orders of <= m positive terms bounded by weight_sum, plus the
  // comparison's own rounding: 2(m-1)*u*S covers the reordering error
  // rigorously; the (m + 4) * 4 * DBL_EPSILON factor leaves a wide
  // margin. Lanes inside +-safety of the pivot are re-decided exactly.
  const double scale =
      weight_sum + std::abs(threshold) + std::abs(eps) + 1.0;
  s.safety = scale * static_cast<double>(m + 4) * 4.0 * DBL_EPSILON;
  return s;
}

bool TraceKernel::ExactRelated(const Support& s, size_t record) const {
  const Bitset& act = *records_[record];
  double overlap = 0.0;
  const size_t m = s.rules.size();
  for (size_t i = 0; i < m; ++i) {
    // Ascending rule order — the scalar reference accumulation.
    if (act.Test(static_cast<size_t>(s.rules[i]))) overlap += s.weights[i];
  }
  if (s.cmp == Cmp::kGeThreshold) return !(overlap < s.threshold);
  return overlap + s.eps >= s.threshold;
}

size_t TraceKernel::Match(const Support& s, const uint64_t* candidate_mask,
                          uint64_t* out_related,
                          TraceKernelStats* stats) const {
  const size_t nb = num_blocks_;
  std::fill(out_related, out_related + nb, 0);
  size_t total_related = 0;
  const size_t m = s.sorted_rules.size();
  const double pivot = s.pivot;
  const double safety = s.safety;
  const double total_weight = s.suffix.empty() ? 0.0 : s.suffix[0];

  alignas(64) double lb[64];
  for (size_t b = 0; b < nb; ++b) {
    uint64_t valid = full_mask_[b];
    if (candidate_mask != nullptr) valid &= candidate_mask[b];
    if (valid == 0) {
      if (stats != nullptr) ++stats->blocks_pruned;
      continue;
    }
    if (stats != nullptr) {
      stats->records_scanned +=
          static_cast<int64_t>(std::popcount(valid));
    }
    std::fill(lb, lb + 64, 0.0);
    uint64_t undecided = valid;
    uint64_t related = 0;
    bool early_exit = false;

    for (size_t ri = 0; ri < m; ++ri) {
      const double weight = s.sorted_weights[ri];
      uint64_t word =
          bits_[static_cast<size_t>(s.sorted_rules[ri]) * nb + b] &
          undecided;
      while (word != 0) {
        const int lane = std::countr_zero(word);
        lb[lane] += weight;
        word &= word - 1;
      }
      const double remaining = s.suffix[ri + 1];
      // Kill checkpoints fire as soon as the unprocessed weight can no
      // longer lift an empty lane over the pivot; accept-only
      // checkpoints are rate-limited (they only buy a full-block early
      // exit, so sweeping every rule would cost more than it saves).
      const bool can_kill = remaining + safety < pivot;
      const bool accept_open = total_weight - remaining >= pivot + safety;
      if (can_kill || (accept_open && ((ri & 7) == 7))) {
        uint64_t scan = undecided;
        while (scan != 0) {
          const int lane = std::countr_zero(scan);
          scan &= scan - 1;
          const uint64_t bit = 1ULL << lane;
          if (lb[lane] >= pivot + safety) {
            undecided &= ~bit;
            related |= bit;
          } else if (can_kill &&
                     lb[lane] + remaining + safety < pivot) {
            undecided &= ~bit;
          }
        }
        if (undecided == 0) {
          early_exit = ri + 1 < m;
          break;
        }
      }
    }
    if (stats != nullptr && early_exit) ++stats->blocks_pruned;

    // Classify leftover lanes: all support rules processed, so lb is the
    // full (descending-order) overlap; outside the +-safety band it
    // decides, inside we replay the exact scalar comparison.
    uint64_t scan = undecided;
    while (scan != 0) {
      const int lane = std::countr_zero(scan);
      scan &= scan - 1;
      const uint64_t bit = 1ULL << lane;
      if (lb[lane] >= pivot + safety) {
        related |= bit;
      } else if (lb[lane] + safety < pivot) {
        // definitely below threshold
      } else {
        if (stats != nullptr) ++stats->exact_fallbacks;
        if (ExactRelated(s, b * 64 + static_cast<size_t>(lane))) {
          related |= bit;
        }
      }
    }
    out_related[b] = related;
    total_related += static_cast<size_t>(std::popcount(related));
  }
  return total_related;
}

}  // namespace ctfl
