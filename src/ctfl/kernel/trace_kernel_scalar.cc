// Portable scalar stripe kernel — the reference tier every SIMD tier
// must agree with bitwise, and the fallback body for tiers whose ISA is
// not compiled on this architecture.

#include "ctfl/kernel/trace_kernel_stripe.h"

namespace ctfl {
namespace kernel_detail {

StripeResult MatchStripeScalar(const TraceKernel& kernel,
                               const TraceKernel::Support& support,
                               const uint64_t* candidate_mask,
                               uint64_t* out_related, size_t block_lo,
                               size_t block_hi) {
  return MatchStripeImpl<ScalarOps>(kernel, support, candidate_mask,
                                    out_related, block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl
