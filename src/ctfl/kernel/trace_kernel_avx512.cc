// AVX-512F stripe kernel: 8 groups of 8 f64 lanes per 64-record block,
// with the activation word's bytes used directly as add/compare masks.
// Compiled with -mavx512f on x86-64 (see src/CMakeLists.txt); selected at
// runtime only when cpuid reports AVX-512F (util/cpu_features.h).
//
// Bit-identity to the scalar tier (trace_kernel_stripe.h contract):
//  - Accumulate uses _mm512_mask_add_pd with byte k-masks — unset lanes
//    are passed through *bitwise untouched* (no arithmetic at all), set
//    lanes get exactly one `+ weight` add.
//  - Compare primitives produce k-masks from the same expressions in the
//    same association order; _CMP_*_OQ matches scalar </>= on the
//    never-NaN inputs.

#include "ctfl/kernel/trace_kernel_stripe.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace ctfl {
namespace kernel_detail {
namespace {

// Below this population the scalar ctz loop wins; per-lane adds are
// identical either way.
constexpr int kSparseLanes = 8;

struct Avx512Ops {
  static void Accumulate(double* lb, uint64_t word, double weight) {
    if (word == 0) return;
    if (std::popcount(word) <= kSparseLanes) {
      ScalarAccumulate(lb, word, weight);
      return;
    }
    const __m512d wv = _mm512_set1_pd(weight);
    for (int g = 0; g < 8; ++g) {
      const __mmask8 k = static_cast<__mmask8>(word >> (8 * g));
      if (k == 0) continue;
      const __m512d cur = _mm512_load_pd(lb + 8 * g);
      _mm512_store_pd(lb + 8 * g, _mm512_mask_add_pd(cur, k, cur, wv));
    }
  }

  static uint64_t GeMask(const double* lb, double bound, uint64_t scan) {
    if (scan == 0) return 0;
    const __m512d bv = _mm512_set1_pd(bound);
    uint64_t mask = 0;
    for (int g = 0; g < 8; ++g) {
      const __mmask8 ge = _mm512_cmp_pd_mask(_mm512_load_pd(lb + 8 * g),
                                             bv, _CMP_GE_OQ);
      mask |= static_cast<uint64_t>(ge) << (8 * g);
    }
    return mask;
  }

  static uint64_t SumLtMask(const double* lb, double remaining,
                            double safety, double pivot, uint64_t scan) {
    if (scan == 0) return 0;
    const __m512d rv = _mm512_set1_pd(remaining);
    const __m512d sv = _mm512_set1_pd(safety);
    const __m512d pv = _mm512_set1_pd(pivot);
    uint64_t mask = 0;
    for (int g = 0; g < 8; ++g) {
      // ((lb + remaining) + safety) < pivot — scalar association order.
      const __m512d sum = _mm512_add_pd(
          _mm512_add_pd(_mm512_load_pd(lb + 8 * g), rv), sv);
      const __mmask8 lt = _mm512_cmp_pd_mask(sum, pv, _CMP_LT_OQ);
      mask |= static_cast<uint64_t>(lt) << (8 * g);
    }
    return mask;
  }

  static uint64_t AddLtMask(const double* lb, double safety, double pivot,
                            uint64_t scan) {
    if (scan == 0) return 0;
    const __m512d sv = _mm512_set1_pd(safety);
    const __m512d pv = _mm512_set1_pd(pivot);
    uint64_t mask = 0;
    for (int g = 0; g < 8; ++g) {
      const __m512d sum = _mm512_add_pd(_mm512_load_pd(lb + 8 * g), sv);
      const __mmask8 lt = _mm512_cmp_pd_mask(sum, pv, _CMP_LT_OQ);
      mask |= static_cast<uint64_t>(lt) << (8 * g);
    }
    return mask;
  }
};

}  // namespace

StripeResult MatchStripeAvx512(const TraceKernel& kernel,
                               const TraceKernel::Support& support,
                               const uint64_t* candidate_mask,
                               uint64_t* out_related, size_t block_lo,
                               size_t block_hi) {
  return MatchStripeImpl<Avx512Ops>(kernel, support, candidate_mask,
                                    out_related, block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl

#else  // !x86: tier never selected; keep the symbol defined.

namespace ctfl {
namespace kernel_detail {

StripeResult MatchStripeAvx512(const TraceKernel& kernel,
                               const TraceKernel::Support& support,
                               const uint64_t* candidate_mask,
                               uint64_t* out_related, size_t block_lo,
                               size_t block_hi) {
  return MatchStripeScalar(kernel, support, candidate_mask, out_related,
                           block_lo, block_hi);
}

}  // namespace kernel_detail
}  // namespace ctfl

#endif
