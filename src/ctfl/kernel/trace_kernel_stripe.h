#ifndef CTFL_KERNEL_TRACE_KERNEL_STRIPE_H_
#define CTFL_KERNEL_TRACE_KERNEL_STRIPE_H_

// Shared stripe-sweep template behind the per-ISA kernel translation
// units (trace_kernel_{scalar,avx2,avx512,neon}.cc). Each TU instantiates
// MatchStripeImpl with an Ops policy supplying the three lane primitives;
// everything else — pruning schedule, checkpoint conditions, exact
// fallback, stats — is this one shared body, so every tier runs the
// *same* decision procedure and differs only in how the 64 per-lane
// doubles are touched.
//
// Bit-identity requirements on an Ops policy (DESIGN.md §10):
//
//  - Accumulate(lb, word, w) must add exactly `w` (one IEEE-754 add) to
//    every set lane of `word` and leave the others bitwise untouched.
//    Masked vector adds that add +0.0 to unset lanes also qualify: the
//    accumulators start at +0.0 and only ever sum non-negative weights,
//    so x + (+0.0) == x bitwise for every reachable accumulator value.
//  - The three mask primitives must evaluate the *same* float expression
//    in the same association order as the scalar reference loop:
//      GeMask:    lb[lane] >= bound
//      SumLtMask: ((lb[lane] + remaining) + safety) < pivot
//      AddLtMask: (lb[lane] + safety) < pivot
//    Lanes outside `scan` may hold anything; the caller masks the result.
//
// With those, per-lane results are independent of lane grouping, so all
// tiers — and any tile-aligned sharding of the block range — make
// identical accept/kill/accept/reject/ambiguous decisions and count
// identical stats.

#include <bit>
#include <cstdint>

#include "ctfl/kernel/trace_kernel.h"

namespace ctfl {
namespace kernel_detail {

/// Vector tiers hand words with few set lanes to this scalar loop: a ctz
/// sweep over 3 lanes beats 8-16 vector ops, and per-lane adds are
/// order-free (each lane gets exactly one add either way).
inline void ScalarAccumulate(double* lb, uint64_t word, double weight) {
  while (word != 0) {
    lb[std::countr_zero(word)] += weight;
    word &= word - 1;
  }
}

/// Portable Ops: ctz iteration over the scan mask, one lane at a time —
/// the reference the vector tiers must agree with bitwise.
struct ScalarOps {
  static void Accumulate(double* lb, uint64_t word, double weight) {
    ScalarAccumulate(lb, word, weight);
  }
  static uint64_t GeMask(const double* lb, double bound, uint64_t scan) {
    uint64_t mask = 0;
    while (scan != 0) {
      const int lane = std::countr_zero(scan);
      scan &= scan - 1;
      if (lb[lane] >= bound) mask |= 1ULL << lane;
    }
    return mask;
  }
  static uint64_t SumLtMask(const double* lb, double remaining,
                            double safety, double pivot, uint64_t scan) {
    uint64_t mask = 0;
    while (scan != 0) {
      const int lane = std::countr_zero(scan);
      scan &= scan - 1;
      if (lb[lane] + remaining + safety < pivot) mask |= 1ULL << lane;
    }
    return mask;
  }
  static uint64_t AddLtMask(const double* lb, double safety, double pivot,
                            uint64_t scan) {
    uint64_t mask = 0;
    while (scan != 0) {
      const int lane = std::countr_zero(scan);
      scan &= scan - 1;
      if (lb[lane] + safety < pivot) mask |= 1ULL << lane;
    }
    return mask;
  }
};

/// The stripe sweep over [block_lo, block_hi). Structure mirrors the
/// original scalar Match loop exactly; see the header comment for why the
/// mask-driven restatement of the checkpoint / classification branches is
/// decision-identical to the scalar per-lane if/else chain (accept and
/// kill conditions are provably disjoint: adding non-negative terms under
/// round-to-nearest never decreases a sum, so a lane with
/// lb >= pivot + safety can never satisfy lb + remaining + safety <
/// pivot).
template <typename Ops>
StripeResult MatchStripeImpl(const TraceKernel& kernel,
                             const TraceKernel::Support& s,
                             const uint64_t* candidate_mask,
                             uint64_t* out_related, size_t block_lo,
                             size_t block_hi) {
  StripeResult res;
  const size_t m = s.sorted_rules.size();
  const double pivot = s.pivot;
  const double safety = s.safety;
  // Same double as the scalar loop's per-lane `pivot + safety`.
  const double accept_bound = pivot + safety;
  const double total_weight = s.suffix.empty() ? 0.0 : s.suffix[0];

  alignas(64) double lb[64];
  for (size_t b = block_lo; b < block_hi; ++b) {
    uint64_t valid = kernel.full_mask_word(b);
    if (candidate_mask != nullptr) valid &= candidate_mask[b];
    if (valid == 0) {
      out_related[b] = 0;
      ++res.stats.blocks_pruned;
      continue;
    }
    res.stats.records_scanned +=
        static_cast<int64_t>(std::popcount(valid));
    for (int i = 0; i < 64; ++i) lb[i] = 0.0;
    uint64_t undecided = valid;
    uint64_t related = 0;
    bool early_exit = false;

    for (size_t ri = 0; ri < m; ++ri) {
      const double weight = s.sorted_weights[ri];
      const uint64_t word =
          kernel.rule_word(s.sorted_rules[ri], b) & undecided;
      Ops::Accumulate(lb, word, weight);
      const double remaining = s.suffix[ri + 1];
      // Kill checkpoints fire as soon as the unprocessed weight can no
      // longer lift an empty lane over the pivot; accept-only
      // checkpoints are rate-limited (they only buy a full-block early
      // exit, so sweeping every rule would cost more than it saves).
      const bool can_kill = remaining + safety < pivot;
      const bool accept_open = total_weight - remaining >= accept_bound;
      if (can_kill || (accept_open && ((ri & 7) == 7))) {
        const uint64_t accept =
            Ops::GeMask(lb, accept_bound, undecided) & undecided;
        uint64_t kill = 0;
        if (can_kill) {
          kill = Ops::SumLtMask(lb, remaining, safety, pivot,
                                undecided & ~accept) &
                 undecided & ~accept;
        }
        related |= accept;
        undecided &= ~(accept | kill);
        if (undecided == 0) {
          early_exit = ri + 1 < m;
          break;
        }
      }
    }
    if (early_exit) ++res.stats.blocks_pruned;

    // Classify leftover lanes: all support rules processed, so lb is the
    // full (descending-order) overlap; outside the +-safety band it
    // decides, inside we replay the exact scalar comparison.
    const uint64_t accept =
        Ops::GeMask(lb, accept_bound, undecided) & undecided;
    related |= accept;
    const uint64_t rest = undecided & ~accept;
    const uint64_t reject = Ops::AddLtMask(lb, safety, pivot, rest) & rest;
    uint64_t ambiguous = rest & ~reject;
    while (ambiguous != 0) {
      const int lane = std::countr_zero(ambiguous);
      ambiguous &= ambiguous - 1;
      ++res.stats.exact_fallbacks;
      if (kernel.ExactRelated(s, b * 64 + static_cast<size_t>(lane))) {
        related |= 1ULL << lane;
      }
    }
    out_related[b] = related;
    res.related += static_cast<size_t>(std::popcount(related));
  }
  return res;
}

}  // namespace kernel_detail
}  // namespace ctfl

#endif  // CTFL_KERNEL_TRACE_KERNEL_STRIPE_H_
