#include "ctfl/rules/rule.h"

#include <algorithm>

#include "ctfl/util/logging.h"

namespace ctfl {

Rule Rule::Atom(Predicate predicate) {
  Rule r;
  r.kind_ = Kind::kAtom;
  r.atom_ = predicate;
  return r;
}

Rule Rule::Conj(std::vector<Rule> children) {
  CTFL_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children[0]);
  Rule r;
  r.kind_ = Kind::kConj;
  r.children_ = std::move(children);
  return r;
}

Rule Rule::Disj(std::vector<Rule> children) {
  CTFL_CHECK(!children.empty());
  if (children.size() == 1) return std::move(children[0]);
  Rule r;
  r.kind_ = Kind::kDisj;
  r.children_ = std::move(children);
  return r;
}

Rule Rule::True() {
  Rule r;
  r.kind_ = Kind::kTrue;
  return r;
}

Rule Rule::False() {
  Rule r;
  r.kind_ = Kind::kFalse;
  return r;
}

bool Rule::Evaluate(const Instance& instance) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom:
      return atom_.Evaluate(instance);
    case Kind::kConj:
      for (const Rule& child : children_) {
        if (!child.Evaluate(instance)) return false;
      }
      return true;
    case Kind::kDisj:
      for (const Rule& child : children_) {
        if (child.Evaluate(instance)) return true;
      }
      return false;
  }
  return false;
}

int Rule::NumPredicates() const {
  if (kind_ == Kind::kTrue || kind_ == Kind::kFalse) return 0;
  if (kind_ == Kind::kAtom) return 1;
  int total = 0;
  for (const Rule& child : children_) total += child.NumPredicates();
  return total;
}

int Rule::Depth() const {
  if (kind_ != Kind::kConj && kind_ != Kind::kDisj) return 0;
  int depth = 0;
  for (const Rule& child : children_) depth = std::max(depth, child.Depth());
  return depth + 1;
}

std::string Rule::ToString(const FeatureSchema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kAtom:
      return atom_.ToString(schema);
    case Kind::kConj:
    case Kind::kDisj: {
      const char* sep = kind_ == Kind::kConj ? " ^ " : " v ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i].ToString(schema);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace ctfl
