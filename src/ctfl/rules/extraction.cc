#include "ctfl/rules/extraction.h"

#include <fstream>

#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/logging.h"
#include "ctfl/util/string_util.h"

namespace ctfl {
namespace {

// Symbolic rule computed by output `node` of logic layer `layer` (with
// binarized weights). Layer 0 inputs are encoder predicates; deeper layers
// reference the previous layer's nodes.
Rule NodeRule(const LogicalNet& net, int layer, int node) {
  const LogicLayer& logic = net.logic_layers()[layer];
  const std::vector<int> inputs = logic.ActiveInputs(node);
  const bool is_conj = logic.IsConjNode(node);
  if (inputs.empty()) return is_conj ? Rule::True() : Rule::False();
  std::vector<Rule> children;
  children.reserve(inputs.size());
  for (int input : inputs) {
    if (layer == 0) {
      children.push_back(
          Rule::Atom(Predicate::FromEncoded(net.encoder().predicate(input))));
    } else {
      children.push_back(NodeRule(net, layer - 1, input));
    }
  }
  return is_conj ? Rule::Conj(std::move(children))
                 : Rule::Disj(std::move(children));
}

}  // namespace

ExtractionResult ExtractRules(const LogicalNet& net) {
  CTFL_SPAN("ctfl.rules.extract");
  static telemetry::Counter& extracted_counter =
      telemetry::MetricsRegistry::Global().GetCounter(
          "ctfl.rules.extracted");
  ExtractionResult result;
  result.rules.reserve(net.num_rules());
  for (int j = 0; j < net.num_rules(); ++j) {
    ExtractedRule er;
    er.coordinate = j;
    const auto [layer, index] = net.RuleSource(j);
    if (layer < 0) {
      er.rule = Rule::Atom(Predicate::FromEncoded(net.encoder().predicate(index)));
    } else {
      er.rule = NodeRule(net, layer, index);
    }
    er.support_class = net.RuleClass(j);
    er.weight = net.RuleWeight(j);
    result.rules.push_back(std::move(er));
  }
  result.bias = net.linear().bias()(0, 0) - net.linear().bias()(0, 1);
  extracted_counter.Add(static_cast<int64_t>(result.rules.size()));
  return result;
}

RuleModel BuildRuleModel(const LogicalNet& net) {
  const ExtractionResult extraction = ExtractRules(net);
  RuleModel model;
  for (const ExtractedRule& er : extraction.rules) {
    const int index =
        model.AddRule({er.rule, er.support_class, er.weight});
    CTFL_CHECK(index == er.coordinate);
  }
  model.SetBias(extraction.bias);
  return model;
}

Status ExportRulesText(const LogicalNet& net, const std::string& path,
                       double min_weight) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  const ExtractionResult extraction = ExtractRules(net);
  out << "# CTFL rule export; bias (neg - pos) = " << extraction.bias
      << "\n";
  int64_t kept = 0;
  int64_t pruned = 0;
  for (const ExtractedRule& er : extraction.rules) {
    if (er.weight < min_weight) {
      ++pruned;
      continue;
    }
    ++kept;
    out << "r" << er.coordinate << (er.support_class == 1 ? "+" : "-")
        << " w=" << StrFormat("%.6f", er.weight) << " : "
        << er.rule.ToString(*net.schema()) << "\n";
  }
  telemetry::MetricsRegistry::Global()
      .GetCounter("ctfl.rules.export_kept")
      .Add(kept);
  telemetry::MetricsRegistry::Global()
      .GetCounter("ctfl.rules.export_pruned")
      .Add(pruned);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace ctfl
