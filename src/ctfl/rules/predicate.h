#ifndef CTFL_RULES_PREDICATE_H_
#define CTFL_RULES_PREDICATE_H_

#include <string>

#include "ctfl/data/dataset.h"
#include "ctfl/nn/binarization_layer.h"

namespace ctfl {

/// Symbolic atomic predicate over one input feature (paper Def. III.1
/// building block): threshold tests for continuous features, equality /
/// inequality tests for discrete ones.
struct Predicate {
  enum class Op { kGt, kLt, kEq, kNeq };

  int feature = 0;
  Op op = Op::kEq;
  double threshold = 0.0;  // kGt / kLt
  int category = 0;        // kEq / kNeq

  bool Evaluate(const Instance& instance) const;

  /// e.g. "capital-gain > 21000", "marital-status = never".
  std::string ToString(const FeatureSchema& schema) const;

  /// Converts an encoder output bit into its symbolic predicate.
  static Predicate FromEncoded(const EncodedPredicate& encoded);
};

bool operator==(const Predicate& a, const Predicate& b);

}  // namespace ctfl

#endif  // CTFL_RULES_PREDICATE_H_
