#include "ctfl/rules/predicate.h"

#include "ctfl/util/string_util.h"

namespace ctfl {

bool Predicate::Evaluate(const Instance& instance) const {
  const double v = instance.values[feature];
  switch (op) {
    case Op::kGt:
      return v > threshold;
    case Op::kLt:
      return v < threshold;
    case Op::kEq:
      return static_cast<int>(v) == category;
    case Op::kNeq:
      return static_cast<int>(v) != category;
  }
  return false;
}

std::string Predicate::ToString(const FeatureSchema& schema) const {
  const FeatureSpec& spec = schema.feature(feature);
  switch (op) {
    case Op::kGt:
      return StrFormat("%s > %.6g", spec.name.c_str(), threshold);
    case Op::kLt:
      return StrFormat("%s < %.6g", spec.name.c_str(), threshold);
    case Op::kEq:
      return spec.name + " = " + spec.categories[category];
    case Op::kNeq:
      return spec.name + " != " + spec.categories[category];
  }
  return "?";
}

Predicate Predicate::FromEncoded(const EncodedPredicate& encoded) {
  Predicate p;
  p.feature = encoded.feature;
  switch (encoded.kind) {
    case EncodedPredicate::Kind::kGreater:
      p.op = Op::kGt;
      p.threshold = encoded.threshold;
      break;
    case EncodedPredicate::Kind::kLess:
      p.op = Op::kLt;
      p.threshold = encoded.threshold;
      break;
    case EncodedPredicate::Kind::kEquals:
      p.op = Op::kEq;
      p.category = encoded.category;
      break;
  }
  return p;
}

bool operator==(const Predicate& a, const Predicate& b) {
  if (a.feature != b.feature || a.op != b.op) return false;
  if (a.op == Predicate::Op::kGt || a.op == Predicate::Op::kLt) {
    return a.threshold == b.threshold;
  }
  return a.category == b.category;
}

}  // namespace ctfl
