#include "ctfl/rules/rule_model.h"

#include "ctfl/util/string_util.h"

namespace ctfl {

int RuleModel::AddRule(WeightedRule rule) {
  rules_.push_back(std::move(rule));
  return static_cast<int>(rules_.size()) - 1;
}

Bitset RuleModel::Activations(const Instance& instance) const {
  Bitset bits(rules_.size());
  for (size_t j = 0; j < rules_.size(); ++j) {
    if (rules_[j].rule.Evaluate(instance)) bits.Set(j);
  }
  return bits;
}

double RuleModel::PositiveVote(const Instance& instance) const {
  double vote = 0.0;
  for (const WeightedRule& wr : rules_) {
    if (wr.support_class == 1 && wr.rule.Evaluate(instance)) {
      vote += wr.weight;
    }
  }
  return vote;
}

double RuleModel::NegativeVote(const Instance& instance) const {
  double vote = 0.0;
  for (const WeightedRule& wr : rules_) {
    if (wr.support_class == 0 && wr.rule.Evaluate(instance)) {
      vote += wr.weight;
    }
  }
  return vote;
}

int RuleModel::Classify(const Instance& instance) const {
  return PositiveVote(instance) >= NegativeVote(instance) + bias_ ? 1 : 0;
}

double RuleModel::Accuracy(const Dataset& dataset) const {
  if (dataset.empty()) return 0.0;
  size_t correct = 0;
  for (const Instance& inst : dataset.instances()) {
    if (Classify(inst) == inst.label) ++correct;
  }
  return static_cast<double>(correct) / dataset.size();
}

std::string RuleModel::Describe(const FeatureSchema& schema,
                                int max_rules) const {
  std::string out;
  const int limit = max_rules < 0 ? num_rules()
                                  : std::min(max_rules, num_rules());
  for (int j = 0; j < limit; ++j) {
    const WeightedRule& wr = rules_[j];
    out += StrFormat("r%d%s (w=%.3f): ", j,
                     wr.support_class == 1 ? "+" : "-", wr.weight);
    out += wr.rule.ToString(schema);
    out += "\n";
  }
  return out;
}

}  // namespace ctfl
