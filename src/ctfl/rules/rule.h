#ifndef CTFL_RULES_RULE_H_
#define CTFL_RULES_RULE_H_

#include <string>
#include <vector>

#include "ctfl/rules/predicate.h"

namespace ctfl {

/// A classification rule (paper Def. III.1): a logical formula over atomic
/// predicates built from conjunction, disjunction, and (at the leaves)
/// negation-free atoms. Compound rules nest recursively.
class Rule {
 public:
  enum class Kind { kAtom, kConj, kDisj, kTrue, kFalse };

  /// Atomic rule.
  static Rule Atom(Predicate predicate);
  /// Conjunction / disjunction of child rules (must be non-empty).
  static Rule Conj(std::vector<Rule> children);
  static Rule Disj(std::vector<Rule> children);
  /// Constant rules: the empty conjunction (always activated) and the
  /// empty disjunction (never activated) — produced by logic nodes whose
  /// binarized weights select no inputs.
  static Rule True();
  static Rule False();

  Kind kind() const { return kind_; }
  const Predicate& atom() const { return atom_; }
  const std::vector<Rule>& children() const { return children_; }

  /// r(x): 1 if the instance fulfills the rule's logical formula.
  bool Evaluate(const Instance& instance) const;

  /// Total number of atomic predicates in the formula.
  int NumPredicates() const;

  /// Nesting depth (atom = 0).
  int Depth() const;

  /// e.g. "(work-hours > 14 v marital-status = never)".
  std::string ToString(const FeatureSchema& schema) const;

 private:
  Rule() = default;

  Kind kind_ = Kind::kAtom;
  Predicate atom_;
  std::vector<Rule> children_;
};

}  // namespace ctfl

#endif  // CTFL_RULES_RULE_H_
