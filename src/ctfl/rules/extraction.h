#ifndef CTFL_RULES_EXTRACTION_H_
#define CTFL_RULES_EXTRACTION_H_

#include <vector>

#include "ctfl/nn/logical_net.h"
#include "ctfl/rules/rule_model.h"

namespace ctfl {

/// One rule coordinate of the trained net, rendered symbolically.
struct ExtractedRule {
  /// Index in the net's rule space (aligns with RuleActivations bitsets).
  int coordinate = 0;
  Rule rule = Rule::True();
  int support_class = 1;
  double weight = 0.0;
};

struct ExtractionResult {
  /// rules[j] describes rule coordinate j (all coordinates present).
  std::vector<ExtractedRule> rules;
  /// Vote offset: b_neg - b_pos of the vote layer.
  double bias = 0.0;
};

/// Reads the binarized logic weights of a trained LogicalNet and rebuilds
/// every rule coordinate as a symbolic Rule: skip predicates become atoms;
/// conjunction / disjunction nodes expand recursively through earlier
/// layers down to encoder predicates. Support class and weight come from
/// the vote layer (Def. III.2).
ExtractionResult ExtractRules(const LogicalNet& net);

/// Builds the formal RuleModel equivalent of the net's binarized form.
/// Rule indices align with the net's rule coordinates, so activation
/// bitsets from either object are interchangeable, and the two classifiers
/// agree on every input.
RuleModel BuildRuleModel(const LogicalNet& net);

/// Writes the extracted symbolic rules of a trained model as a readable
/// report (one rule per line with class and weight) — the artifact a
/// federation would publish to participants. Rules below `min_weight`
/// are omitted.
Status ExportRulesText(const LogicalNet& net, const std::string& path,
                       double min_weight = 1e-3);

}  // namespace ctfl

#endif  // CTFL_RULES_EXTRACTION_H_
