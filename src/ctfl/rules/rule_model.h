#ifndef CTFL_RULES_RULE_MODEL_H_
#define CTFL_RULES_RULE_MODEL_H_

#include <string>
#include <vector>

#include "ctfl/rules/rule.h"
#include "ctfl/util/bitset.h"

namespace ctfl {

/// One rule of a rule-based model, bound to the class it supports and its
/// importance weight (paper Def. III.2: entries of (r+, w+) / (r-, w-)).
struct WeightedRule {
  Rule rule;
  int support_class = 1;  // 0 = negative, 1 = positive
  double weight = 1.0;
};

/// The formal rule-based model of paper Def. III.2: classification by
/// weighted voting of activated rules,
///   M(x) = 1[ w+ . r+(x) >= w- . r-(x) + bias ].
/// Rules keep their insertion index so activation Bitsets align with the
/// indices used by contribution tracing and interpretation.
class RuleModel {
 public:
  RuleModel() = default;

  /// Returns the index assigned to the rule.
  int AddRule(WeightedRule rule);

  /// Learned vote offset (b_neg - b_pos of the net's vote layer); positive
  /// bias makes the model lean negative.
  void SetBias(double bias) { bias_ = bias; }
  double bias() const { return bias_; }

  int num_rules() const { return static_cast<int>(rules_.size()); }
  const WeightedRule& rule(int j) const { return rules_[j]; }

  /// Activation bitset r(x) over all rule indices.
  Bitset Activations(const Instance& instance) const;

  /// Eq. (3): weighted vote with ties resolved positive.
  int Classify(const Instance& instance) const;

  /// Accuracy on a dataset (utility metric Eq. (1) for this model).
  double Accuracy(const Dataset& dataset) const;

  /// Sum of weights of positive / negative rules activated by x.
  double PositiveVote(const Instance& instance) const;
  double NegativeVote(const Instance& instance) const;

  /// Human-readable listing ("r3+ (w=0.82): capital-gain > 21000").
  std::string Describe(const FeatureSchema& schema, int max_rules = -1) const;

 private:
  std::vector<WeightedRule> rules_;
  double bias_ = 0.0;
};

}  // namespace ctfl

#endif  // CTFL_RULES_RULE_MODEL_H_
