// Engineering microbenchmarks + ablations of the design choices called
// out in DESIGN.md §6: tracing fast paths (dedup / Max-Miner / threads),
// tau_w sensitivity, logic-layer width, and the substrate hot loops
// (bitset intersection, rule activation, grafted step, simplex).

#include <filesystem>
#include <fstream>

#include <benchmark/benchmark.h>

#include "common.h"
#include "ctfl/core/tracer.h"
#include "ctfl/data/gen/synthetic.h"
#include "ctfl/fl/fedavg.h"
#include "ctfl/mining/apriori.h"
#include "ctfl/mining/max_miner.h"
#include "ctfl/nn/matrix.h"
#include "ctfl/nn/trainer.h"
#include "ctfl/solver/simplex.h"
#include "ctfl/store/query_engine.h"
#include "ctfl/store/snapshot.h"
#include "ctfl/stream/delta_log.h"
#include "ctfl/stream/emitter.h"
#include "ctfl/stream/scorer.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/util/build_info.h"
#include "ctfl/util/cpu_features.h"
#include "ctfl/util/logging.h"

namespace ctfl {
namespace {

// ---------------------------------------------------------------------------
// Telemetry overhead. BM_SpanDisabled is the contract check consumed by
// tools/check_telemetry_overhead.sh: a disabled span must cost a single
// relaxed atomic load + branch (single-digit nanoseconds), so telemetry
// can stay compiled into every hot path.
// ---------------------------------------------------------------------------
void BM_SpanDisabled(benchmark::State& state) {
  telemetry::SetTracingEnabled(false);
  for (auto _ : state) {
    CTFL_SPAN("bench.span.disabled");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  telemetry::SetTracingEnabled(true);
  telemetry::ClearTrace();
  for (auto _ : state) {
    CTFL_SPAN("bench.span.enabled");
    benchmark::ClobberMemory();
  }
  telemetry::SetTracingEnabled(false);
  telemetry::ClearTrace();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  telemetry::Counter& counter =
      telemetry::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter.Add(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::Histogram& hist =
      telemetry::MetricsRegistry::Global().GetHistogram("bench.hist");
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v);
    v = v < 1e6 ? v + 17.0 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

// ---------------------------------------------------------------------------
// Shared fixture: a trained model + federation on scaled-down adult.
// ---------------------------------------------------------------------------
struct TracingFixture {
  bench::PreparedExperiment experiment;
  LogicalNet model;

  TracingFixture()
      : experiment(bench::Prepare("adult", 8, /*skew_label=*/true, 5)),
        model([this] {
          CtflConfig config = bench::MakeCtflConfig("adult", 5);
          config.central.epochs = 8;
          return TrainCentral(experiment.test.schema(), config.net,
                              MergeFederation(experiment.federation),
                              config.central);
        }()) {}
};

TracingFixture& Fixture() {
  static TracingFixture* fixture = new TracingFixture();
  return *fixture;
}

void BM_BitsetAndCount(benchmark::State& state) {
  const size_t bits = state.range(0);
  Rng rng(1);
  Bitset a(bits), b(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(0.3)) a.Set(i);
    if (rng.Bernoulli(0.3)) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitsetAndCount)->Arg(128)->Arg(512)->Arg(2048);

void BM_RuleActivation(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  const Instance& inst = fx.experiment.test.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.RuleActivations(inst));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RuleActivation);

void BM_ModelPredict(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  const Instance& inst = fx.experiment.test.instance(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.Predict(inst));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelPredict);

// Ablation: tracing fast paths. Arg encodes (dedup, max_miner, threads).
void BM_TracingPaths(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  TracerConfig config;
  config.tau_w = 0.9;
  config.use_dedup = state.range(0) != 0;
  config.use_max_miner = state.range(1) != 0;
  config.num_threads = static_cast<int>(state.range(2));
  const ContributionTracer tracer(&fx.model, &fx.experiment.federation,
                                  config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.Trace(fx.experiment.test));
  }
  state.SetItemsProcessed(state.iterations() * fx.experiment.test.size());
}
BENCHMARK(BM_TracingPaths)
    ->Args({0, 0, 1})   // brute force
    ->Args({1, 0, 1})   // + dedup
    ->Args({1, 1, 1})   // + Max-Miner prefilter
    ->Args({1, 1, 0});  // + all cores

// ---------------------------------------------------------------------------
// Tracing kernel (DESIGN.md §10): legacy scalar tau_w loop vs the blocked
// word-parallel kernel on a tracing-heavy shape (>= 64 rules, >= 10k
// training records; dedup on, Max-Miner off, single thread) so the
// speedup is the kernel's alone. Both legs produce bit-identical
// TraceResults; the counters expose the pruning the blocked kernel does.
// Acceptance (ISSUE PR4): blocked >= 2x over legacy single-thread.
// Acceptance (ISSUE PR9): blocked (best SIMD dispatch) >= 2x over the
// forced-scalar blocked_scalar leg. RegisterIsaBenchVariants() adds one
// blocked_<isa> leg per tier the machine supports (bit-identical results,
// pure speed comparison) plus a sharded blocked_mt8 leg at the best tier.
// tools/bench_trace_json.sh turns this into BENCH_trace.json.
// ---------------------------------------------------------------------------
struct TraceBenchFixture {
  SyntheticSpec spec;
  Federation federation;
  Dataset test;
  LogicalNet model;

  TraceBenchFixture()
      : spec(BenchmarkSpec("adult").value()),
        federation([this] {
          Rng rng(17);
          // 40960 records keeps the Eq. 4 sweep (records x rules) the
          // dominant cost, so the per-ISA legs measure the kernel rather
          // than per-instance activation overhead.
          const Dataset train = GenerateSynthetic(spec, 40960, rng);
          Rng prng(18);
          return MakeFederation(PartitionSkewSample(train, 8, 0.7, prng));
        }()),
        test([this] {
          Rng rng(19);
          return GenerateSynthetic(spec, 256, rng);
        }()),
        model([this] {
          LogicalNetConfig config;
          config.logic_layers = {{32, 32}};
          config.seed = 5;
          LogicalNet net(spec.schema, config);
          // Train on a small independent sample: fixture setup stays
          // cheap, and tracing cost does not depend on training size.
          Rng rng(20);
          const Dataset sample = GenerateSynthetic(spec, 2000, rng);
          TrainConfig tc;
          tc.epochs = 5;
          tc.learning_rate = 0.05;
          TrainGrafted(net, sample, tc);
          return net;
        }()) {}
};

TraceBenchFixture& GetTraceBenchFixture() {
  static TraceBenchFixture* fixture = new TraceBenchFixture();
  return *fixture;
}

// `isa` < 0 means "whatever CurrentTraceIsa() dispatches" (the default
// production path); >= 0 forces that tier for a per-ISA speed leg.
void BM_TracePass(benchmark::State& state, TraceKernelKind kind, int isa,
                  int trace_threads) {
  TraceBenchFixture& fx = GetTraceBenchFixture();
  TracerConfig config;
  // 0.7 keeps lanes ambiguous deep into the weight-sorted sweep, so the
  // legs measure the Eq. 4 inner loop. At extreme thresholds (0.9+) the
  // suffix-sum checkpoints resolve almost every lane within the first few
  // rules and all tiers converge on the same fixed per-block overhead.
  config.tau_w = 0.7;
  config.use_dedup = true;
  config.use_max_miner = false;
  config.num_threads = 1;
  config.kernel = kind;
  config.isa = isa < 0 ? CurrentTraceIsa() : static_cast<TraceIsa>(isa);
  config.trace_threads = trace_threads;
  const ContributionTracer tracer(&fx.model, &fx.federation, config);
  int64_t checks = 0, scanned = 0, pruned = 0, related = 0, fallbacks = 0;
  for (auto _ : state) {
    const TraceResult result = tracer.Trace(fx.test);
    benchmark::DoNotOptimize(result.related_records);
    checks += result.tau_w_checks;
    scanned += result.records_scanned;
    pruned += result.blocks_pruned;
    related += result.related_records;
    fallbacks += result.exact_fallbacks;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.test.size()));
  state.counters["num_rules"] = static_cast<double>(fx.model.num_rules());
  state.counters["tau_w_checks"] = benchmark::Counter(
      static_cast<double>(checks), benchmark::Counter::kAvgIterations);
  state.counters["records_scanned"] = benchmark::Counter(
      static_cast<double>(scanned), benchmark::Counter::kAvgIterations);
  state.counters["blocks_pruned"] = benchmark::Counter(
      static_cast<double>(pruned), benchmark::Counter::kAvgIterations);
  state.counters["related"] = benchmark::Counter(
      static_cast<double>(related), benchmark::Counter::kAvgIterations);
  state.counters["exact_fallbacks"] = benchmark::Counter(
      static_cast<double>(fallbacks), benchmark::Counter::kAvgIterations);
}
BENCHMARK_CAPTURE(BM_TracePass, legacy, TraceKernelKind::kLegacy, -1, 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_TracePass, blocked, TraceKernelKind::kBlocked, -1, 1)
    ->Unit(benchmark::kMillisecond);

// Ablation: tau_w sensitivity of tracing cost.
void BM_TracingTauW(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  TracerConfig config;
  config.tau_w = state.range(0) / 100.0;
  config.num_threads = 1;
  const ContributionTracer tracer(&fx.model, &fx.experiment.federation,
                                  config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracer.Trace(fx.experiment.test));
  }
}
BENCHMARK(BM_TracingTauW)->Arg(60)->Arg(80)->Arg(90)->Arg(100);

void BM_GraftedStep(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  const int width = static_cast<int>(state.range(0));
  LogicalNetConfig config;
  config.logic_layers = {{width / 2, width / 2}};
  config.seed = 7;
  LogicalNet net(fx.experiment.test.schema(), config);
  AdamOptimizer optimizer(0.01);

  const size_t batch = 64;
  std::vector<size_t> indices;
  std::vector<int> labels;
  for (size_t i = 0; i < batch; ++i) {
    indices.push_back(i % fx.experiment.test.size());
    labels.push_back(fx.experiment.test.instance(indices.back()).label);
  }
  const Matrix encoded =
      net.encoder().EncodeBatch(fx.experiment.test, indices);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GraftedStep(net, encoded, labels, optimizer));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_GraftedStep)->Arg(64)->Arg(128)->Arg(256);

// ---------------------------------------------------------------------------
// Parallel engine (DESIGN.md §9). The results are bit-identical at every
// thread count, so these measure pure wall-clock scaling. Acceptance for
// the fan-out: >= 2x at 4 threads on the 8-client federation.
// ---------------------------------------------------------------------------

void BM_FedAvgRound(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  std::vector<Dataset> clients;
  clients.reserve(fx.experiment.federation.size());
  for (const Participant& p : fx.experiment.federation) {
    clients.push_back(p.data);
  }
  CtflConfig base = bench::MakeCtflConfig("adult", 5);

  FedAvgConfig config;
  config.rounds = 1;
  config.local_epochs = 1;
  config.local.learning_rate = 0.05;
  config.num_threads = static_cast<int>(state.range(0));
  // Keep the local matrix kernels serial in every leg so this measures
  // the client fan-out alone.
  config.local.num_threads = 1;

  const LogicalNet seed_net(fx.experiment.test.schema(), base.net);
  for (auto _ : state) {
    state.PauseTiming();
    LogicalNet net = seed_net;  // fresh global model per round
    state.ResumeTiming();
    const Status status = RunFedAvg(net, clients, config);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(net);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(clients.size()));
}
// Real-time rates: the pooled legs park the orchestrating thread while
// ThreadPool workers train, so CPU-time-based items_per_second (the
// google-benchmark default) would measure scheduler noise — useless and
// unstable for the perf-gate trajectory.
BENCHMARK(BM_FedAvgRound)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Degraded round: dropout + straggler + corrupt uploads with one retry.
// Measures the validation/retry overhead of the fault-tolerant commit
// phase relative to BM_FedAvgRound's fault-free fast path.
void BM_FedAvgRoundFaulty(benchmark::State& state) {
  TracingFixture& fx = Fixture();
  std::vector<Dataset> clients;
  clients.reserve(fx.experiment.federation.size());
  for (const Participant& p : fx.experiment.federation) {
    clients.push_back(p.data);
  }
  CtflConfig base = bench::MakeCtflConfig("adult", 5);

  FedAvgConfig config;
  config.rounds = 1;
  config.local_epochs = 1;
  config.local.learning_rate = 0.05;
  config.num_threads = static_cast<int>(state.range(0));
  config.local.num_threads = 1;
  FailureSpec spec;
  spec.dropout = 0.2;
  spec.straggler = 0.2;
  spec.corrupt = 0.1;
  spec.seed = 21;
  config.failure = FailurePlan(spec);
  config.retry_budget = 1;

  const LogicalNet seed_net(fx.experiment.test.schema(), base.net);
  for (auto _ : state) {
    state.PauseTiming();
    LogicalNet net = seed_net;  // fresh global model per round
    state.ResumeTiming();
    const Status status = RunFedAvg(net, clients, config);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(net);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(clients.size()));
}
BENCHMARK(BM_FedAvgRoundFaulty)
    ->ArgNames({"threads"})
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_MatMul(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  Rng rng(11);
  Matrix a(256, 512), b(512, 256);
  a.RandomUniform(rng, -1, 1);
  b.RandomUniform(rng, -1, 1);
  SetMatrixParallelism(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  SetMatrixParallelism(0);
  state.SetItemsProcessed(state.iterations() * a.rows() * a.cols() *
                          b.cols());
}
BENCHMARK(BM_MatMul)->ArgNames({"threads"})->Arg(1)->Arg(4)->Arg(8);

void BM_MaxMiner(benchmark::State& state) {
  Rng rng(9);
  const size_t items = 64;
  std::vector<Bitset> transactions;
  for (int t = 0; t < 400; ++t) {
    Bitset row(items);
    for (size_t i = 0; i < items; ++i) {
      if (rng.Bernoulli(0.15)) row.Set(i);
    }
    transactions.push_back(std::move(row));
  }
  const VerticalDb db(transactions, items);
  const size_t min_support = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxMinerMaximal(db, min_support));
  }
}
BENCHMARK(BM_MaxMiner);

void BM_AprioriBaseline(benchmark::State& state) {
  Rng rng(9);
  const size_t items = 64;
  std::vector<Bitset> transactions;
  for (int t = 0; t < 400; ++t) {
    Bitset row(items);
    for (size_t i = 0; i < items; ++i) {
      if (rng.Bernoulli(0.15)) row.Set(i);
    }
    transactions.push_back(std::move(row));
  }
  const VerticalDb db(transactions, items);
  const size_t min_support = 40;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaximalOnly(AprioriFrequent(db, min_support)));
  }
}
BENCHMARK(BM_AprioriBaseline);

void BM_SimplexLeastCoreShape(benchmark::State& state) {
  // LP shaped like the LeastCore program for n participants.
  const int n = static_cast<int>(state.range(0));
  Rng rng(11);
  LpProblem lp;
  lp.num_vars = n + 1;
  lp.objective.assign(n + 1, 0.0);
  lp.objective[n] = 1.0;
  lp.free_vars.assign(n + 1, true);
  const int constraints = n * n * 3;
  for (int c = 0; c < constraints; ++c) {
    LpConstraint con;
    con.coeffs.assign(n + 1, 0.0);
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) con.coeffs[i] = 1.0;
    }
    con.coeffs[n] = 1.0;
    con.rel = LpConstraint::Rel::kGe;
    con.rhs = rng.Uniform(0.0, 1.0);
    lp.constraints.push_back(std::move(con));
  }
  LpConstraint eff;
  eff.coeffs.assign(n + 1, 0.0);
  for (int i = 0; i < n; ++i) eff.coeffs[i] = 1.0;
  eff.rel = LpConstraint::Rel::kEq;
  eff.rhs = 1.0;
  lp.constraints.push_back(std::move(eff));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLp(lp));
  }
}
BENCHMARK(BM_SimplexLeastCoreShape)->Arg(4)->Arg(8)->Arg(12);

// ---------------------------------------------------------------------------
// Contribution bundle store (DESIGN.md §8): persistence cost of the
// train-once/query-forever split, plus the posting-list prefilter vs the
// linear reference scan.
// ---------------------------------------------------------------------------
struct BundleFixture {
  std::string path;
  store::BundleContent content;
  store::QueryEngine engine;

  BundleFixture()
      : path((std::filesystem::temp_directory_path() /
              "ctfl_micro_bench_bundle.ctflb")
                 .string()),
        content([] {
          TracingFixture& fx = Fixture();
          const CtflConfig config = bench::MakeCtflConfig("adult", 5);
          const ContributionTracer tracer(
              &fx.model, &fx.experiment.federation, config.tracer);
          store::SnapshotOptions options;
          options.tau_w = config.tracer.tau_w;
          options.macro_delta = config.macro_delta;
          options.min_rule_weight = config.tracer.min_rule_weight;
          return store::BuildBundleContent(
                     fx.model, fx.experiment.federation, fx.experiment.test,
                     tracer.train_activations(), options)
              .value();
        }()),
        engine([this] {
          store::BundleContent copy = content;
          return store::QueryEngine::FromContent(std::move(copy)).value();
        }()) {}
};

BundleFixture& GetBundleFixture() {
  static BundleFixture* fixture = new BundleFixture();
  return *fixture;
}

void BM_BundleSave(benchmark::State& state) {
  BundleFixture& fx = GetBundleFixture();
  size_t bytes = 0;
  for (auto _ : state) {
    const Status status = store::WriteBundle(fx.content, fx.path);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
    benchmark::ClobberMemory();
  }
  {
    std::ifstream in(fx.path, std::ios::binary | std::ios::ate);
    if (in) bytes = static_cast<size_t>(in.tellg());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  state.counters["bundle_bytes"] = static_cast<double>(bytes);
  state.counters["records"] =
      static_cast<double>(fx.content.total_train_records());
}
BENCHMARK(BM_BundleSave);

void BM_BundleLoad(benchmark::State& state) {
  BundleFixture& fx = GetBundleFixture();
  const Status written = store::WriteBundle(fx.content, fx.path);
  if (!written.ok()) state.SkipWithError(written.ToString().c_str());
  size_t bytes = 0;
  for (auto _ : state) {
    Result<store::BundleContent> loaded = store::ReadBundle(fx.path);
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize(loaded);
    bytes = loaded->total_train_records();  // keep the decode alive
  }
  {
    std::ifstream in(fx.path, std::ios::binary | std::ios::ate);
    if (in) bytes = static_cast<size_t>(in.tellg());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  state.counters["bundle_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BundleLoad);

// Arg(0): linear class-bucket scan (the oracle). Arg(1): posting-list
// prefilter. Both return identical related sets; the prune counters show
// how much of the bucket the index skips. The capture name picks the
// Eq. 4 matching engine (legacy scalar vs blocked word-parallel kernel).
void BM_QueryRelated(benchmark::State& state, TraceKernelKind kind,
                     int isa) {
  BundleFixture& fx = GetBundleFixture();
  store::QueryOptions options;
  options.use_index = state.range(0) != 0;
  options.kernel = kind;
  options.isa = isa < 0 ? CurrentTraceIsa() : static_cast<TraceIsa>(isa);
  const size_t num_tests = fx.content.tests.size();
  size_t t = 0;
  int64_t checks = 0, bucket = 0, pruned = 0, scanned = 0;
  for (auto _ : state) {
    const store::RelatedResult result =
        fx.engine.RelatedForTest(t, options);
    benchmark::DoNotOptimize(result.total_related);
    checks += result.tau_w_checks;
    bucket += result.bucket_size;
    pruned += result.candidates_pruned;
    scanned += result.records_scanned;
    t = (t + 1) % num_tests;
  }
  state.SetItemsProcessed(state.iterations());
  if (bucket > 0) {
    state.counters["pruned_frac"] =
        static_cast<double>(pruned) / static_cast<double>(bucket);
  }
  state.counters["tau_w_checks/query"] =
      benchmark::Counter(static_cast<double>(checks),
                         benchmark::Counter::kAvgIterations);
  state.counters["records_scanned/query"] =
      benchmark::Counter(static_cast<double>(scanned),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK_CAPTURE(BM_QueryRelated, legacy, TraceKernelKind::kLegacy, -1)
    ->Arg(0)
    ->Arg(1);
BENCHMARK_CAPTURE(BM_QueryRelated, blocked, TraceKernelKind::kBlocked, -1)
    ->Arg(0)
    ->Arg(1);

// ---------------------------------------------------------------------------
// Streaming score folds (DESIGN.md §15): folding one round's delta into
// live scores vs recomputing them through the full one-shot pipeline —
// the cost ratio the delta log exists to buy. The fold patches state in
// O(delta) and re-traces (no training, no forward passes); the recompute
// leg is everything a scoreboard without a delta log would have to rerun
// after round r. Both produce bit-identical scores (tests/stream_test.cc
// proves it); these legs measure the wall-clock gap alone. The fold_empty
// leg is the O(1) carry-over of a fully degraded round.
// Acceptance (ISSUE PR10): fold >= 10x cheaper than recompute, checked by
// the `stream` suite of tools/bench_suite.sh into BENCH_stream.json.
// ---------------------------------------------------------------------------
struct StreamBenchFixture {
  bench::PreparedExperiment experiment;
  CtflConfig config;
  stream::DeltaLogContents log;
  stream::StreamingScorer base;  ///< folded to round R-1

  StreamBenchFixture()
      : experiment(bench::Prepare("adult", 4, /*skew_label=*/false, 13)),
        config([] {
          CtflConfig c = bench::MakeCtflConfig("adult", 13);
          c.federated = true;
          c.fedavg.rounds = 4;
          c.fedavg.local_epochs = 2;
          c.fedavg.local.learning_rate = 0.05;
          c.fedavg.local.seed = 13;
          return c;
        }()),
        log([this] {
          const std::string path =
              (std::filesystem::temp_directory_path() /
               "ctfl_micro_bench_stream.ctfld")
                  .string();
          stream::DeltaLogEmitter emitter(path, &experiment.federation,
                                          &experiment.test, &config);
          emitter.Attach(&config.fedavg);
          RunCtfl(experiment.federation, experiment.test, config).value();
          CTFL_CHECK(emitter.status().ok());
          // The recompute leg reruns this config; drop the observer so it
          // measures the bare pipeline (and never touches the dead
          // emitter).
          config.fedavg.model_observer = nullptr;
          return stream::ReadDeltaLog(path).value();
        }()),
        base([this] {
          stream::StreamingScorer scorer =
              stream::StreamingScorer::FromHeader(log.header).value();
          for (size_t i = 0; i + 1 < log.rounds.size(); ++i) {
            CTFL_CHECK(scorer.Fold(log.rounds[i]).ok());
          }
          return scorer;
        }()) {}
};

StreamBenchFixture& GetStreamBenchFixture() {
  static StreamBenchFixture* fixture = new StreamBenchFixture();
  return *fixture;
}

void BM_StreamFold(benchmark::State& state, bool incremental) {
  StreamBenchFixture& fx = GetStreamBenchFixture();
  if (incremental) {
    const stream::RoundDelta& last = fx.log.rounds.back();
    for (auto _ : state) {
      state.PauseTiming();
      stream::StreamingScorer scorer = fx.base;  // fresh round-(R-1) state
      state.ResumeTiming();
      const Status status = scorer.Fold(last);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        break;
      }
      benchmark::DoNotOptimize(scorer.micro_scores());
    }
    state.counters["delta_param_xors"] =
        static_cast<double>(fx.log.rounds.back().param_xors.size());
  } else {
    for (auto _ : state) {
      Result<CtflReport> report =
          RunCtfl(fx.experiment.federation, fx.experiment.test, fx.config);
      if (!report.ok()) {
        state.SkipWithError(report.status().ToString().c_str());
        break;
      }
      benchmark::DoNotOptimize(report->micro_scores);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["rounds_in_log"] =
      static_cast<double>(fx.log.rounds.size());
}
BENCHMARK_CAPTURE(BM_StreamFold, fold, true)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_StreamFold, recompute, false)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// A fully degraded round carries an empty delta: the fold is a counter
// bump, not a retrace.
void BM_StreamFoldEmpty(benchmark::State& state) {
  StreamBenchFixture& fx = GetStreamBenchFixture();
  for (auto _ : state) {
    state.PauseTiming();
    stream::StreamingScorer scorer = fx.base;
    stream::RoundDelta empty;
    empty.round = static_cast<uint32_t>(scorer.rounds_folded() + 1);
    empty.degraded = true;
    state.ResumeTiming();
    const Status status = scorer.Fold(empty);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(scorer.rounds_folded());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamFoldEmpty)->UseRealTime();

}  // namespace

// One forced-tier leg per SIMD tier this machine supports, so one Release
// run yields the full same-machine ISA trajectory (BENCH_trace.json keys
// the 2x acceptance on blocked vs blocked_scalar), plus a sharded leg at
// the best tier. Registered from main() — AvailableTraceIsas() needs a
// live process, not static-init order.
void RegisterIsaBenchVariants() {
  for (const TraceIsa isa : AvailableTraceIsas()) {
    const int tier = static_cast<int>(isa);
    benchmark::RegisterBenchmark(
        (std::string("BM_TracePass/blocked_") + TraceIsaName(isa)).c_str(),
        [tier](benchmark::State& state) {
          BM_TracePass(state, TraceKernelKind::kBlocked, tier, 1);
        })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_QueryRelated/blocked_") + TraceIsaName(isa))
            .c_str(),
        [tier](benchmark::State& state) {
          BM_QueryRelated(state, TraceKernelKind::kBlocked, tier);
        })
        ->Arg(1);
  }
  const TraceIsa best = BestAvailableTraceIsa();
  const int tier = static_cast<int>(best);
  benchmark::RegisterBenchmark(
      "BM_TracePass/blocked_mt8",
      [tier](benchmark::State& state) {
        BM_TracePass(state, TraceKernelKind::kBlocked, tier, 8);
      })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
}

}  // namespace ctfl

// Custom main (replacing benchmark_main) so every BENCH_*.json carries
// the CTFL library's build type in its context block: perf trajectories
// must never mix debug and release numbers, and tools/perf_gate.py keys
// baseline-vs-candidate comparisons on this value.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("ctfl_build_type", ctfl::BuildTypeName());
  // The dispatched SIMD tier is execution context like the build type:
  // tools/perf_gate.py refuses to compare runs whose tiers differ.
  benchmark::AddCustomContext("ctfl_trace_isa",
                              ctfl::TraceIsaName(ctfl::CurrentTraceIsa()));
  ctfl::RegisterIsaBenchVariants();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
