#include "common.h"

#include <cstdio>
#include <cstdlib>

#include "ctfl/util/logging.h"

namespace ctfl {
namespace bench {

bool FullScale() {
  const char* env = std::getenv("CTFL_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

size_t TrainSizeFor(const std::string& dataset) {
  if (FullScale()) return BenchmarkDefaultSize(dataset);
  if (dataset == "tic-tac-toe") return 958;  // already tiny; keep exact
  if (dataset == "adult") return 1600;
  if (dataset == "bank") return 1600;
  if (dataset == "dota2") return 2400;
  return 1600;
}

PreparedExperiment Prepare(const std::string& dataset, int participants,
                           bool skew_label, uint64_t seed) {
  const size_t n = TrainSizeFor(dataset);
  // Generate train + 25% extra as the reserved test set.
  Dataset all = MakeBenchmark(dataset, n == 958 && dataset == "tic-tac-toe"
                                           ? 0
                                           : n + n / 4,
                              seed)
                    .value();
  Rng rng(seed * 31 + 7);
  TrainTestSplit split = StratifiedSplit(all, 0.2, rng);

  Rng prng(seed * 17 + 3);
  const double alpha = 0.8;  // paper: Dirichlet alpha in [0.6, 1]
  std::vector<Dataset> clients =
      skew_label ? PartitionSkewLabel(split.train, participants, alpha, prng)
                 : PartitionSkewSample(split.train, participants, alpha,
                                       prng);
  return PreparedExperiment(MakeFederation(std::move(clients)),
                            std::move(split.test));
}

CtflConfig MakeCtflConfig(const std::string& dataset, uint64_t seed) {
  CtflConfig config;
  config.federated = false;  // central training of the single global model
  config.central.epochs = FullScale() ? 30 : 12;
  config.central.learning_rate = 0.05;
  config.central.batch_size = 64;
  config.central.seed = seed + 1;
  config.net.tau_d = 10;
  const int width = dataset == "dota2" ? 64 : 48;
  config.net.logic_layers = {{width, width}};
  config.net.fan_in = 3;
  config.net.seed = seed + 2;
  config.tracer.tau_w = dataset == "dota2" ? 0.8 : 0.9;
  config.macro_delta = 1;
  return config;
}

RetrainUtility::Config MakeUtilityConfig(const std::string& dataset,
                                         uint64_t seed) {
  RetrainUtility::Config config;
  const CtflConfig ctfl = MakeCtflConfig(dataset, seed);
  config.net = ctfl.net;
  config.train = ctfl.central;
  // At reduced scale, coalition retrainings get a lighter epoch budget
  // than CTFL's own single training — a deliberately PRO-baseline bias
  // (their wall-clock would only grow with equal epochs), noted in
  // EXPERIMENTS.md. Full scale uses equal budgets.
  if (!FullScale()) config.train.epochs = 8;
  return config;
}

Result<ContributionResult> RunScheme(const std::string& scheme,
                                     const PreparedExperiment& experiment,
                                     const std::string& dataset,
                                     uint64_t seed,
                                     double budget_multiplier,
                                     RetrainUtility* shared_utility,
                                     std::shared_ptr<const CtflReport>*
                                         ctfl_report_out) {
  const CtflConfig ctfl_config = MakeCtflConfig(dataset, seed);
  RetrainUtility local_utility(&experiment.federation, &experiment.test,
                               MakeUtilityConfig(dataset, seed));
  RetrainUtility& utility =
      shared_utility != nullptr ? *shared_utility : local_utility;
  const auto run_ctfl = [&](CtflScheme::Variant variant) {
    CtflScheme s(&experiment.federation, &experiment.test, ctfl_config,
                 variant);
    Result<ContributionResult> result = s.Compute(utility);
    if (result.ok() && ctfl_report_out != nullptr) {
      *ctfl_report_out = s.shared_report();
    }
    return result;
  };
  if (scheme == "CTFL-micro") {
    return run_ctfl(CtflScheme::Variant::kMicro);
  }
  if (scheme == "CTFL-macro") {
    return run_ctfl(CtflScheme::Variant::kMacro);
  }
  if (scheme == "Individual") {
    IndividualScheme s;
    return s.Compute(utility);
  }
  if (scheme == "LeaveOneOut") {
    LeaveOneOutScheme s;
    return s.Compute(utility);
  }
  if (scheme == "ShapleyValue") {
    ShapleyValueScheme::Options options;
    options.budget_multiplier = budget_multiplier;
    options.seed = seed + 11;
    ShapleyValueScheme s(options);
    return s.Compute(utility);
  }
  if (scheme == "LeastCore") {
    LeastCoreScheme::Options options;
    options.budget_multiplier = budget_multiplier;
    options.seed = seed + 13;
    LeastCoreScheme s(options);
    return s.Compute(utility);
  }
  return Status::NotFound("unknown scheme " + scheme);
}

std::vector<double> RemovalCurve(const PreparedExperiment& experiment,
                                 const std::string& dataset,
                                 const std::vector<double>& scores,
                                 int removals, uint64_t seed,
                                 RetrainUtility* shared_utility) {
  const std::vector<int> order = RankByScore(scores);
  const RetrainUtility::Config config = MakeUtilityConfig(dataset, seed);
  RetrainUtility local_utility(&experiment.federation, &experiment.test,
                               config);
  RetrainUtility& utility =
      shared_utility != nullptr ? *shared_utility : local_utility;

  const int n = static_cast<int>(experiment.federation.size());
  std::vector<bool> removed(n, false);
  std::vector<double> curve;
  curve.push_back(utility.Value(GrandCoalition(n)));
  for (int k = 0; k < removals && k < n; ++k) {
    removed[order[k]] = true;
    std::vector<int> remaining;
    for (int i = 0; i < n; ++i) {
      if (!removed[i]) remaining.push_back(i);
    }
    curve.push_back(utility.Value(remaining));
  }
  return curve;
}

double CurveAuc(const std::vector<double>& curve) {
  if (curve.size() < 2) return curve.empty() ? 0.0 : curve[0];
  double area = 0.0;
  for (size_t i = 0; i + 1 < curve.size(); ++i) {
    area += 0.5 * (curve[i] + curve[i + 1]);
  }
  return area / (curve.size() - 1);
}

void InitTelemetryFromEnv() {
  const char* out = std::getenv("CTFL_TELEMETRY_OUT");
  const char* summary = std::getenv("CTFL_TELEMETRY_SUMMARY");
  if ((out != nullptr && out[0] != '\0') ||
      (summary != nullptr && summary[0] == '1')) {
    telemetry::SetTracingEnabled(true);
  }
}

void FlushTelemetry() {
  const char* out = std::getenv("CTFL_TELEMETRY_OUT");
  const char* summary = std::getenv("CTFL_TELEMETRY_SUMMARY");
  if (summary != nullptr && summary[0] == '1') {
    std::printf("\nspan summary:\n%s",
                telemetry::TraceSummaryTable().c_str());
    std::printf("\nmetrics:\n%s",
                telemetry::MetricsRegistry::Global().SummaryTable().c_str());
  }
  if (out != nullptr && out[0] != '\0') {
    const Status status = telemetry::WriteChromeTrace(out);
    if (status.ok()) {
      std::printf("\nchrome trace (%zu events) -> %s\n",
                  telemetry::TraceEventCount(), out);
    } else {
      std::fprintf(stderr, "telemetry export failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

void PrintRunTelemetry(const std::string& label,
                       const telemetry::RunTelemetry& run) {
  std::printf("\n%s run telemetry:\n%s", label.c_str(),
              run.Summary().c_str());
}

void PrintRule(char c, int width) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

void PrintTitle(const std::string& title) {
  PrintRule('=');
  std::printf("%s\n", title.c_str());
  PrintRule('=');
}

}  // namespace bench
}  // namespace ctfl
