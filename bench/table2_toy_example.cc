// Reproduces Table II + Example II.1: the three-participant motivating
// example. A and B hold similar, sufficient *typical* data; C holds a
// small amount of complementary *task-critical* data.
//
// Realization: the feature space splits into a typical region (y <= 0.6,
// 60% of mass, label decided by x) and a critical region (y > 0.6, 40% of
// mass, label decided by z — a feature the typical region never uses).
// A and B hold typical-region data only (fully substitutable); C holds
// critical-region data only. Then, as in the paper's Table II:
//   v({})  ~ 0.5            (balanced labels)
//   v(A) = v(B) = v(AB) ~ 0.8   (typical solved, critical a coin flip)
//   v(C) ~ 0.7                  (critical solved, typical a coin flip)
//   v(AC) = v(BC) = v(ABC) ~ 1.0
// and Shapley gives C more credit than A or B despite C's smaller solo
// value — LeaveOneOut zeroes A and B, Individual undervalues C's
// complementarity.

#include <cstdio>

#include "common.h"
#include "ctfl/data/gen/synthetic.h"

namespace {

using namespace ctfl;

SyntheticSpec ToySpec() {
  SyntheticSpec spec;
  spec.schema = std::make_shared<FeatureSchema>(
      std::vector<FeatureSpec>{
          FeatureSchema::Continuous("x", 0, 1),
          FeatureSchema::Continuous("y", 0, 1),
          FeatureSchema::Continuous("z", 0, 1),
      },
      "neg", "pos");
  spec.samplers = {
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}},
      FeatureSampler{FeatureSampler::Kind::kUniform, 0, 0, {}}};
  using Op = GtPredicate::Op;
  // Typical region (y <= 0.6): x decides.
  spec.rules = {{{{1, Op::kLt, 0.6}, {0, Op::kGt, 0.5}}, 1, 1.0},
                {{{1, Op::kLt, 0.6}, {0, Op::kLt, 0.5}}, 0, 1.0},
                // Critical region (y > 0.6): z decides.
                {{{1, Op::kGt, 0.6}, {2, Op::kGt, 0.5}}, 1, 1.0},
                {{{1, Op::kGt, 0.6}, {2, Op::kLt, 0.5}}, 0, 1.0}};
  return spec;
}

Dataset RegionSlice(const SyntheticSpec& spec, size_t n, bool critical,
                    Rng& rng) {
  Dataset out(spec.schema);
  while (out.size() < n) {
    const Dataset batch = GenerateSynthetic(spec, 64, rng);
    for (const Instance& inst : batch.instances()) {
      const bool in_critical = inst.values[1] > 0.6;
      if (in_critical == critical && out.size() < n) {
        out.AppendUnchecked(inst);
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace ctfl;
  const SyntheticSpec spec = ToySpec();
  Rng rng(2024);
  const Dataset a = RegionSlice(spec, 500, /*critical=*/false, rng);
  const Dataset b = RegionSlice(spec, 500, /*critical=*/false, rng);
  const Dataset c = RegionSlice(spec, 150, /*critical=*/true, rng);
  const Dataset test = GenerateSynthetic(spec, 800, rng);
  const Federation fed = MakeFederation({a, b, c});

  RetrainUtility::Config ucfg = bench::MakeUtilityConfig("adult", 1);
  ucfg.net.logic_layers = {{24, 24}};
  ucfg.train.epochs = 25;
  RetrainUtility utility(&fed, &test, ucfg);

  bench::PrintTitle(
      "Table II: Model Test Accuracy Across Participant Sets (A,B typical; "
      "C critical)");
  const char* names[] = {"{}",  "A",   "B",   "C",
                         "A,B", "A,C", "B,C", "A,B,C"};
  const std::vector<std::vector<int>> sets = {
      {}, {0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}};
  std::printf("%-14s", "Participants");
  for (const char* n : names) std::printf("%8s", n);
  std::printf("\n%-14s", "Test Acc (%)");
  for (const auto& s : sets) {
    std::printf("%8.1f", 100.0 * utility.Value(s));
  }
  std::printf("\n");
  bench::PrintRule();
  std::printf(
      "Paper reference values: 50 / 80 / 80 / 65 / 80 / 90 / 90 / 90\n\n");

  bench::PrintTitle("Example II.1: scheme comparison on the toy federation");
  double shap_a = 0.0, shap_b = 0.0, shap_c = 0.0;
  {
    IndividualScheme scheme;
    const ContributionResult r = scheme.Compute(utility).value();
    std::printf("%-14s A=%.3f  B=%.3f  C=%.3f   (C undervalued: scored by "
                "stand-alone accuracy)\n",
                "Individual", r.scores[0], r.scores[1], r.scores[2]);
  }
  {
    LeaveOneOutScheme scheme;
    const ContributionResult r = scheme.Compute(utility).value();
    std::printf("%-14s A=%.3f  B=%.3f  C=%.3f   (A,B substitutable: ~zero "
                "LOO scores)\n",
                "LeaveOneOut", r.scores[0], r.scores[1], r.scores[2]);
  }
  {
    const ContributionResult r =
        ShapleyValueScheme::ComputeExact(utility).value();
    shap_a = r.scores[0];
    shap_b = r.scores[1];
    shap_c = r.scores[2];
    std::printf("%-14s A=%.3f  B=%.3f  C=%.3f   (C's complementary value "
                "recognized)\n",
                "ShapleyValue", shap_a, shap_b, shap_c);
  }
  std::printf("\nPaper reference (percent): Shapley A=11.7 B=11.7 C=16.6 -> "
              "expect C > A ~= B here: %s\n",
              (shap_c > shap_a && shap_c > shap_b) ? "YES" : "NO");
  return 0;
}
