// Ablations of CTFL's design knobs (DESIGN.md §6), each printed as a
// sweep table on a fixed adult/skew-label federation:
//   (a) tau_w — strict vs soft tracing (paper §III-C Remark): related-set
//       size, matched accuracy, and score concentration;
//   (b) delta — the macro scheme's minimum-related threshold;
//   (c) DP epsilon — privacy/utility of perturbed activation uploads,
//       measured as rank agreement with the noiseless run;
//   (d) logic-layer width — model accuracy vs rule count vs tracing cost.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.h"
#include "ctfl/core/allocation.h"
#include "ctfl/fl/privacy.h"
#include "ctfl/util/stopwatch.h"

namespace {

using namespace ctfl;

// Spearman-style agreement: fraction of participant pairs ordered the same
// way by both score vectors.
double PairwiseRankAgreement(const std::vector<double>& a,
                             const std::vector<double>& b) {
  int agree = 0, total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      ++total;
      if ((a[i] - a[j]) * (b[i] - b[j]) >= 0) ++agree;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(agree) / total;
}

double MeanRelated(const TraceResult& trace) {
  double total = 0.0;
  for (const TestTrace& t : trace.tests) {
    total += static_cast<double>(t.total_related);
  }
  return trace.tests.empty() ? 0.0 : total / trace.tests.size();
}

}  // namespace

int main() {
  using namespace ctfl;
  const std::string dataset = "adult";
  constexpr uint64_t kSeed = 29;
  const bench::PreparedExperiment experiment =
      bench::Prepare(dataset, 8, /*skew_label=*/true, kSeed);
  const CtflConfig base = bench::MakeCtflConfig(dataset, kSeed);

  // One trained model shared by the tracing ablations.
  const LogicalNet model =
      TrainCentral(experiment.test.schema(), base.net,
                   MergeFederation(experiment.federation), base.central);
  std::printf("shared model accuracy: %.3f\n\n",
              model.Accuracy(experiment.test));

  // ---- (a) tau_w sweep -----------------------------------------------
  bench::PrintTitle("Ablation A: tracing threshold tau_w (Eq. 4)");
  std::printf("%8s %16s %18s %14s\n", "tau_w", "mean #related",
              "matched accuracy", "trace sec");
  for (double tau : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    TracerConfig tc = base.tracer;
    tc.tau_w = tau;
    const ContributionTracer tracer(&model, &experiment.federation, tc);
    const TraceResult trace = tracer.Trace(experiment.test);
    std::printf("%8.2f %16.1f %18.3f %14.3f\n", tau, MeanRelated(trace),
                trace.matched_accuracy, trace.tracing_seconds);
  }

  // ---- (b) delta sweep -------------------------------------------------
  bench::PrintTitle("\nAblation B: macro minimum-related threshold delta "
                    "(Eq. 6)");
  {
    const ContributionTracer tracer(&model, &experiment.federation,
                                    base.tracer);
    const TraceResult trace = tracer.Trace(experiment.test);
    const std::vector<int> deltas = {1, 2, 4, 8, 16, 32};
    const auto sweep = MacroAllocationSweep(trace, deltas);
    const std::vector<double> micro = MicroAllocation(trace);
    std::printf("%8s %22s %22s\n", "delta", "sum of macro scores",
                "rank agreement w/ micro");
    for (size_t d = 0; d < deltas.size(); ++d) {
      double total = 0.0;
      for (double s : sweep[d]) total += s;
      std::printf("%8d %22.3f %22.3f\n", deltas[d], total,
                  PairwiseRankAgreement(sweep[d], micro));
    }
  }

  // ---- (c) DP epsilon sweep --------------------------------------------
  bench::PrintTitle("\nAblation C: DP-perturbed activation uploads "
                    "(randomized response)");
  std::vector<double> clean_scores;
  {
    const ContributionTracer tracer(&model, &experiment.federation,
                                    base.tracer);
    clean_scores = MicroAllocation(tracer.Trace(experiment.test));
  }
  std::printf("%10s %12s %22s\n", "epsilon", "flip prob",
              "rank agreement vs clean");
  for (double eps : {16.0, 8.0, 4.0, 2.0, 1.0, 0.5}) {
    TracerConfig tc = base.tracer;
    tc.dp_epsilon = eps;
    const ContributionTracer tracer(&model, &experiment.federation, tc);
    const std::vector<double> scores =
        MicroAllocation(tracer.Trace(experiment.test));
    std::printf("%10.1f %12.4f %22.3f\n", eps,
                RandomizedResponseFlipProbability(eps),
                PairwiseRankAgreement(scores, clean_scores));
  }

  // ---- (d) logic width sweep -------------------------------------------
  bench::PrintTitle("\nAblation D: logic-layer width (64-512 node range of "
                    "the paper)");
  std::printf("%8s %12s %12s %12s %14s\n", "width", "accuracy", "#rules",
              "train sec", "trace sec");
  for (int width : {32, 64, 128, 256}) {
    CtflConfig config = base;
    config.net.logic_layers = {{width / 2, width / 2}};
    Stopwatch train_watch;
    const LogicalNet net =
        TrainCentral(experiment.test.schema(), config.net,
                     MergeFederation(experiment.federation), config.central);
    const double train_sec = train_watch.ElapsedSeconds();
    const ContributionTracer tracer(&net, &experiment.federation,
                                    config.tracer);
    const TraceResult trace = tracer.Trace(experiment.test);
    std::printf("%8d %12.3f %12d %12.2f %14.3f\n", width,
                trace.global_accuracy, net.num_rules(), train_sec,
                trace.tracing_seconds);
  }
  return 0;
}
