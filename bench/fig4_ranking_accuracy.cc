// Reproduces Fig. 4: contribution-ranking accuracy measured by removing
// the top-5 scored participants one at a time (without replacement),
// retraining after each removal, and reporting the model-accuracy curve.
// The smaller the area under the curve (AUC), the more accurately the
// scheme identified the true top contributors.
//
// Setup per paper §VI-A: 8 participants, Dirichlet skew-sample and
// skew-label partitions, all four datasets. ShapleyValue / LeastCore are
// skipped on dota2 (they "cannot finish in a reasonable running time" in
// the paper; here they would dominate the bench's runtime the same way).

#include <cstdio>

#include "common.h"

int main() {
  using namespace ctfl;
  constexpr int kParticipants = 8;
  constexpr int kRemovals = 5;
  constexpr uint64_t kSeed = 7;
  // Reduced sampling budgets keep the bench minutes-scale; the paper's
  // full Theta(n^2 log n) budget is reached with CTFL_BENCH_FULL=1.
  const double budget = bench::FullScale() ? 1.0 : 0.15;

  bench::PrintTitle(
      "Fig. 4: Accuracy by Removing Participants in Contribution "
      "Descending Order (smaller AUC = better)");

  for (const std::string& dataset : bench::Datasets()) {
    for (const bool skew_label : {false, true}) {
      std::printf("\n--- %s / %s ---\n", dataset.c_str(),
                  skew_label ? "skew-label" : "skew-sample");
      const bench::PreparedExperiment experiment =
          bench::Prepare(dataset, kParticipants, skew_label, kSeed);
      // Coalition values are deterministic, so all schemes and the removal
      // curves share one memoized utility.
      RetrainUtility utility(&experiment.federation, &experiment.test,
                             bench::MakeUtilityConfig(dataset, kSeed));
      std::printf("%-13s %-44s %8s\n", "scheme",
                  "accuracy after removing top-k (k=0..5)", "AUC");

      for (const std::string& scheme : bench::SchemeNames()) {
        const bool heavy =
            scheme == "ShapleyValue" || scheme == "LeastCore";
        if (heavy && dataset == "dota2") {
          std::printf("%-13s (skipped: exceeds time budget, as in paper)\n",
                      scheme.c_str());
          continue;
        }
        const Result<ContributionResult> result = bench::RunScheme(
            scheme, experiment, dataset, kSeed, budget, &utility);
        if (!result.ok()) {
          std::printf("%-13s ERROR: %s\n", scheme.c_str(),
                      result.status().ToString().c_str());
          continue;
        }
        const std::vector<double> curve = bench::RemovalCurve(
            experiment, dataset, result->scores, kRemovals, kSeed,
            &utility);
        std::printf("%-13s ", scheme.c_str());
        for (double acc : curve) std::printf("%6.3f ", acc);
        std::printf("  %7.4f\n", bench::CurveAuc(curve));
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): CTFL curves sit lowest (best) or tie the\n"
      "best baseline; Individual/LeaveOneOut degrade ranking quality,\n"
      "especially under skew-label partitions.\n");
  return 0;
}
