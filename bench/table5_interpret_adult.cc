// Reproduces Table V: the adult interpretability case study — three
// participants under skew-label partitioning, each characterized by its
// most frequently activated rules. The paper observes: low-income rules
// dominate everywhere (class imbalance); participants with homogeneous
// data share predicates (capital-gain < 5k, capital-loss < 1k); the
// participant holding high-income records surfaces positive rules
// (capital-gain > 21k, education-num > 15, age > 55).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "ctfl/core/interpret.h"

int main() {
  using namespace ctfl;
  const std::string dataset = "adult";
  const Dataset all =
      MakeBenchmark(dataset, bench::TrainSizeFor(dataset), 55).value();
  Rng rng(56);
  const TrainTestSplit split = StratifiedSplit(all, 0.2, rng);
  // Draw skew-label partitions until every participant has a substantive
  // shard (a case study needs three characterizable participants; tiny
  // Dirichlet draws make degenerate profiles).
  Federation fed;
  for (uint64_t attempt = 0;; ++attempt) {
    Rng prng(57 + attempt);
    fed = MakeFederation(PartitionSkewLabel(split.train, 3, 0.6, prng));
    size_t smallest = split.train.size();
    for (const Participant& p : fed) {
      smallest = std::min(smallest, p.data.size());
    }
    if (smallest >= split.train.size() / 10 || attempt > 50) break;
  }

  CtflConfig config = bench::MakeCtflConfig(dataset, 58);
  const CtflReport report = RunCtfl(fed, split.test, config).value();
  const ExtractionResult extraction = ExtractRules(report.model);

  bench::PrintTitle(
      "Table V: Frequently Activated Rules per Participant (adult, "
      "skew-label, 3 participants)");
  std::printf("global model test accuracy: %.3f\n", report.test_accuracy);
  for (const Participant& p : fed) {
    std::printf("%s: %zu records, pos-rate %.2f\n", p.name.c_str(),
                p.data.size(), p.data.PositiveRate());
  }
  std::printf("\n");

  const auto profiles = BuildProfiles(report.trace, /*top_k=*/5, /*distinctive=*/true);
  for (const ParticipantProfile& profile : profiles) {
    std::printf("%s", FormatProfile(profile, extraction, *all.schema(),
                                    fed[profile.participant].name)
                          .c_str());
    std::printf("  micro score: %.4f\n\n",
                report.micro_scores[profile.participant]);
  }
  // The paper's observation 1 holds by construction — low-income rules
  // dominate every profile — so surface each participant's strongest
  // *positive-class* rules separately (the paper's observation 3: the
  // high-income-rich participant shows rules like capital-gain > 21k).
  std::printf("strongest positive-class (>50k) rules per participant:\n");
  for (const Participant& p : fed) {
    std::printf("  %s (pos-rate %.2f):\n", p.name.c_str(),
                p.data.PositiveRate());
    std::vector<std::pair<double, int>> positives;
    for (int j = 0; j < report.trace.num_rules; ++j) {
      if (extraction.rules[j].support_class == 1 &&
          report.trace.beneficial_rule_freq(p.id, j) > 0.0) {
        positives.emplace_back(report.trace.beneficial_rule_freq(p.id, j),
                               j);
      }
    }
    std::sort(positives.rbegin(), positives.rend());
    for (size_t k = 0; k < positives.size() && k < 2; ++k) {
      std::printf("    [freq=%.2f] %s\n", positives[k].first,
                  extraction.rules[positives[k].second].rule
                      .ToString(*all.schema())
                      .c_str());
    }
    if (positives.empty()) std::printf("    (none traced)\n");
  }
  std::printf(
      "\nReading guide (paper Table V): negative (<=50k) rules dominate\n"
      "every profile (class imbalance, the paper's observation 1);\n"
      "homogeneous participants share predicates (observation 2); the\n"
      "income-rich participant has the strongest positive rules, e.g.\n"
      "capital-gain/education-num thresholds (observation 3).\n");
  return 0;
}
