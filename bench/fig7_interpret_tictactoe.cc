// Reproduces Fig. 7: the tic-tac-toe interpretability case study. Three
// participants hold skew-label partitions of the exact endgame dataset;
// CTFL's tracing pass yields each participant's most frequently activated
// beneficial rules, which read as board-line patterns (e.g. cells
// 1^2^3 for an x win across the top row).

#include <cstdio>

#include "common.h"
#include "ctfl/core/interpret.h"
#include "ctfl/data/gen/tictactoe.h"

int main() {
  using namespace ctfl;
  const Dataset full = GenerateTicTacToe();
  Rng rng(33);
  const TrainTestSplit split = StratifiedSplit(full, 0.25, rng);
  Rng prng(34);
  const Federation fed =
      MakeFederation(PartitionSkewLabel(split.train, 3, 0.6, prng));

  CtflConfig config = bench::MakeCtflConfig("tic-tac-toe", 35);
  config.central.epochs = 60;
  const CtflReport report = RunCtfl(fed, split.test, config).value();
  const ExtractionResult extraction = ExtractRules(report.model);

  bench::PrintTitle(
      "Fig. 7: Frequently Activated Rules per Participant (tic-tac-toe, "
      "skew-label, 3 participants)");
  std::printf("global model test accuracy: %.3f\n", report.test_accuracy);
  std::printf("label skew: ");
  for (const Participant& p : fed) {
    std::printf("%s pos-rate %.2f (%zu rec)  ", p.name.c_str(),
                p.data.PositiveRate(), p.data.size());
  }
  std::printf("\n\n");

  const auto profiles = BuildProfiles(report.trace, /*top_k=*/5, /*distinctive=*/true);
  for (const ParticipantProfile& profile : profiles) {
    std::printf("%s", FormatProfile(profile, extraction,
                                    *full.schema(),
                                    fed[profile.participant].name)
                          .c_str());
    std::printf("  micro score: %.4f\n\n",
                report.micro_scores[profile.participant]);
  }

  const CollectionGuidance guidance =
      GuideDataCollection(report.trace, /*top_k=*/5);
  std::printf("%s\n",
              FormatGuidance(guidance, extraction, *full.schema()).c_str());
  std::printf(
      "Reading guide (paper Fig. 7): participants rich in x-wins surface\n"
      "positive row/column/diagonal conjunctions; the o-heavy participant\n"
      "surfaces negative patterns; short rules can still be frequent.\n");
  return 0;
}
