#ifndef CTFL_BENCH_COMMON_H_
#define CTFL_BENCH_COMMON_H_

// Shared experiment plumbing for the per-table / per-figure benchmark
// binaries. Each binary reproduces one artifact of the paper's §VI
// evaluation; this header centralizes dataset preparation, scheme
// execution, and table printing so the binaries read like the experiment
// descriptions.

#include <string>
#include <vector>

#include "ctfl/core/pipeline.h"
#include "ctfl/telemetry/metrics.h"
#include "ctfl/telemetry/run_telemetry.h"
#include "ctfl/telemetry/trace.h"
#include "ctfl/data/gen/benchmarks.h"
#include "ctfl/data/split.h"
#include "ctfl/fl/partition.h"
#include "ctfl/valuation/individual.h"
#include "ctfl/valuation/least_core.h"
#include "ctfl/valuation/leave_one_out.h"
#include "ctfl/valuation/shapley.h"

namespace ctfl {
namespace bench {

/// The four paper datasets in Table IV order.
inline const std::vector<std::string>& Datasets() {
  static const std::vector<std::string> names = {"tic-tac-toe", "adult",
                                                 "bank", "dota2"};
  return names;
}

/// Experiment scale. The paper ran full dataset sizes on a 3090 over
/// hours; the default here scales instance counts down so every bench
/// finishes in minutes on a laptop while preserving the comparisons'
/// shape. Set CTFL_BENCH_FULL=1 for paper-size runs.
bool FullScale();

/// Training-set size used for the given dataset at the current scale.
size_t TrainSizeFor(const std::string& dataset);

struct PreparedExperiment {
  Federation federation;
  Dataset test;

  PreparedExperiment(Federation fed, Dataset test_in)
      : federation(std::move(fed)), test(std::move(test_in)) {}
};

/// Generates the dataset, splits off the reserved test set, and partitions
/// the training data across `participants` clients (Dirichlet alpha per
/// §VI-A; skew-label or skew-sample).
PreparedExperiment Prepare(const std::string& dataset, int participants,
                           bool skew_label, uint64_t seed);

/// CTFL pipeline configuration tuned per dataset (paper defaults: tau_w in
/// [0.8, 1], tau_d = 10, one logic layer of 64-512 nodes).
CtflConfig MakeCtflConfig(const std::string& dataset, uint64_t seed);

/// Coalition-retraining utility configuration matching the CTFL model.
RetrainUtility::Config MakeUtilityConfig(const std::string& dataset,
                                         uint64_t seed);

/// Scheme identifiers in presentation order.
inline const std::vector<std::string>& SchemeNames() {
  static const std::vector<std::string> names = {
      "CTFL-micro", "CTFL-macro", "Individual",
      "LeaveOneOut", "ShapleyValue", "LeastCore"};
  return names;
}

/// Runs one contribution scheme end-to-end on the prepared experiment.
/// `budget_multiplier` scales the sampled-coalition budgets of
/// ShapleyValue / LeastCore (1.0 = the paper's Theta(n^2 log n)).
/// When `shared_utility` is non-null, coalition evaluations are memoized
/// across schemes (coalition values are deterministic, so sharing changes
/// nothing but wall-clock); timing-sensitive benches pass nullptr.
/// For CTFL schemes a non-null `ctfl_report_out` receives the full
/// CtflReport (including RunTelemetry); other schemes leave it untouched.
Result<ContributionResult> RunScheme(
    const std::string& scheme, const PreparedExperiment& experiment,
    const std::string& dataset, uint64_t seed,
    double budget_multiplier = 1.0, RetrainUtility* shared_utility = nullptr,
    std::shared_ptr<const CtflReport>* ctfl_report_out = nullptr);

/// Bench-side telemetry switches, mirroring the CLI flags through the
/// environment: CTFL_TELEMETRY_OUT=<path.json> buffers spans and writes a
/// Chrome trace at FlushTelemetry(); CTFL_TELEMETRY_SUMMARY=1 prints the
/// span + metrics tables. Call InitTelemetryFromEnv() once at startup and
/// FlushTelemetry() before exit.
void InitTelemetryFromEnv();
void FlushTelemetry();

/// Prints one run's per-phase / per-round telemetry (Fig. 5 companion:
/// where CTFL's single pass spends its time).
void PrintRunTelemetry(const std::string& label,
                       const telemetry::RunTelemetry& run);

/// Fig. 4 metric: retrains after removing the top-k scored participants
/// one at a time (k = 1..removals) and returns the accuracy series
/// [acc(all), acc(-1), ..., acc(-removals)].
std::vector<double> RemovalCurve(const PreparedExperiment& experiment,
                                 const std::string& dataset,
                                 const std::vector<double>& scores,
                                 int removals, uint64_t seed,
                                 RetrainUtility* shared_utility = nullptr);

/// Area under the (normalized-x) removal curve via the trapezoid rule —
/// smaller is better (Fig. 4's comparison statistic).
double CurveAuc(const std::vector<double>& curve);

/// stdout helpers for paper-style tables.
void PrintRule(char c = '-', int width = 78);
void PrintTitle(const std::string& title);

}  // namespace bench
}  // namespace ctfl

#endif  // CTFL_BENCH_COMMON_H_
