// Reproduces Table I: the qualitative method-comparison matrix. Rather
// than hard-coding the paper's +/++/+++ cells, this bench *measures* the
// three quantitative axes on a representative experiment (tic-tac-toe,
// skew-label, 8 participants) and grades each scheme:
//   accuracy   — removal-curve AUC (smaller = better ranking accuracy),
//   efficiency — coalition trainings needed,
//   robustness — |relative score drift| of a data-replicating participant,
// and reports interpretability as a capability flag (only CTFL exposes
// rule-level evidence).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "common.h"
#include "ctfl/fl/adversary.h"

namespace {

using namespace ctfl;

// Grade a measured value against thresholds (ascending = worse).
std::string Grade(double value, double plus3, double plus2) {
  if (value <= plus3) return "+++";
  if (value <= plus2) return "++";
  return "+";
}

}  // namespace

int main() {
  using namespace ctfl;
  const std::string dataset = "tic-tac-toe";
  constexpr int kParticipants = 8;
  constexpr uint64_t kSeed = 3;
  const double budget = bench::FullScale() ? 1.0 : 0.4;

  const bench::PreparedExperiment experiment =
      bench::Prepare(dataset, kParticipants, /*skew_label=*/true, kSeed);

  // Replication scenario for the robustness axis.
  std::vector<Dataset> attacked_clients;
  for (const Participant& p : experiment.federation) {
    attacked_clients.push_back(p.data);
  }
  Rng arng(kSeed + 5);
  ReplicateData(attacked_clients[2], 0.4, arng);
  const bench::PreparedExperiment attacked(
      MakeFederation(std::move(attacked_clients)), experiment.test);

  struct Row {
    std::string scheme;
    double auc = 0.0;
    int trainings = 0;
    double drift = 0.0;
    bool interpretable = false;
  };
  std::vector<Row> rows;

  for (const std::string& scheme : bench::SchemeNames()) {
    Row row;
    row.scheme = scheme;
    row.interpretable = scheme.rfind("CTFL", 0) == 0;
    const Result<ContributionResult> result =
        bench::RunScheme(scheme, experiment, dataset, kSeed, budget);
    if (!result.ok()) continue;
    row.trainings = std::max(result->coalitions_evaluated, 1);
    row.auc = bench::CurveAuc(bench::RemovalCurve(
        experiment, dataset, result->scores, 5, kSeed));
    const Result<ContributionResult> after =
        bench::RunScheme(scheme, attacked, dataset, kSeed, budget);
    if (after.ok() && result->scores[2] != 0.0) {
      row.drift = std::min(1.0, std::abs(after->scores[2] -
                                         result->scores[2]) /
                                    std::abs(result->scores[2]));
    }
    rows.push_back(row);
  }

  bench::PrintTitle("Table I: Comparing CTFL to Existing Approaches "
                    "(grades measured on tic-tac-toe/skew-label)");
  std::printf("%-13s %-16s %-22s %-20s %s\n", "Method",
              "Accuracy (AUC)", "Efficiency (#train)",
              "Robustness (drift)", "Interpretable");
  bench::PrintRule();
  // Grade thresholds relative to the observed spread.
  double best_auc = 1e9;
  for (const Row& r : rows) best_auc = std::min(best_auc, r.auc);
  for (const Row& r : rows) {
    const std::string acc = Grade(r.auc - best_auc, 0.01, 0.03);
    const std::string eff = Grade(r.trainings, 8, 40);
    const std::string rob = Grade(r.drift, 0.10, 0.35);
    std::printf("%-13s %-4s (%5.3f)     %-4s (%4d)           %-4s (%5.3f)"
                "        %s\n",
                r.scheme.c_str(), acc.c_str(), r.auc, eff.c_str(),
                r.trainings, rob.c_str(), r.drift,
                r.interpretable ? "yes (rule evidence)" : "x");
  }
  bench::PrintRule();
  std::printf(
      "Paper Table I: Individual +/+++/+++/x, LeaveOneOut +/++/+/x,\n"
      "LeastCore ++/+/++/x, ShapleyValue +++/+/+/x, CTFL +++/+++/+++/yes.\n"
      "(CTFL-micro's replication drift is by design; the macro variant is\n"
      "the replication-robust one the paper grades.)\n");
  return 0;
}
