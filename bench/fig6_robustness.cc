// Reproduces Fig. 6: robustness of contribution scores against the three
// adverse behaviors (paper §VI-A): data replication, low-quality data,
// and label flipping. Two of the eight participants modify their data
// with a ratio drawn from U[0.1, 0.5]; we report the relative score
// change (phi' - phi) / phi of the modified participants, clipped to
// [-1, 1], averaged over the two.
//
// Expected shape (paper Fig. 6):
//   - replication: CTFL-macro and Individual ~ 0; CTFL-micro inflates
//     (by design, it is volume-proportional); LOO/Shapley/LeastCore
//     fluctuate.
//   - low-quality / label-flip: CTFL-micro and Individual show stable,
//     proportional score drops; the coalition schemes react erratically.

#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"
#include "ctfl/fl/adversary.h"

namespace {

using namespace ctfl;

enum class Attack { kReplicate, kLowQuality, kFlip };

const char* AttackName(Attack a) {
  switch (a) {
    case Attack::kReplicate:
      return "data replication";
    case Attack::kLowQuality:
      return "low-quality data";
    case Attack::kFlip:
      return "label flipping";
  }
  return "?";
}

Federation ApplyAttack(const Federation& fed, Attack attack,
                       const std::vector<int>& victims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Dataset> clients;
  for (const Participant& p : fed) clients.push_back(p.data);
  for (int v : victims) {
    const double ratio = rng.Uniform(0.1, 0.5);
    switch (attack) {
      case Attack::kReplicate:
        ReplicateData(clients[v], ratio, rng);
        break;
      case Attack::kLowQuality:
        InjectLowQuality(clients[v], ratio, rng);
        break;
      case Attack::kFlip:
        FlipLabels(clients[v], ratio, rng);
        break;
    }
  }
  return MakeFederation(std::move(clients));
}

double RelativeChange(double before, double after) {
  if (before == 0.0) return after == 0.0 ? 0.0 : 1.0;
  return std::clamp((after - before) / std::abs(before), -1.0, 1.0);
}

}  // namespace

int main() {
  using namespace ctfl;
  constexpr int kParticipants = 8;
  constexpr uint64_t kSeed = 19;
  const std::vector<int> victims = {1, 4};  // 2 of 8, as in the paper
  const double budget = bench::FullScale() ? 1.0 : 0.15;
  const std::vector<Attack> attacks = {
      Attack::kReplicate, Attack::kLowQuality, Attack::kFlip};

  bench::PrintTitle(
      "Fig. 6: Relative Contribution Change of Modified Participants "
      "(clipped to [-1, 1])");

  // cells[{attack, scheme}] = per-dataset display cells. Computed
  // dataset-major with one memoized utility for the clean federation and
  // one per attacked federation, shared across schemes (coalition values
  // are deterministic, so sharing only saves retraining time).
  std::map<std::pair<int, std::string>, std::vector<std::string>> cells;
  for (const std::string& dataset : bench::Datasets()) {
    const bench::PreparedExperiment clean =
        bench::Prepare(dataset, kParticipants, /*skew_label=*/true, kSeed);
    RetrainUtility clean_utility(&clean.federation, &clean.test,
                                 bench::MakeUtilityConfig(dataset, kSeed));

    std::map<std::string, Result<ContributionResult>> before;
    for (const std::string& scheme : bench::SchemeNames()) {
      const bool heavy = scheme == "ShapleyValue" || scheme == "LeastCore";
      if (heavy && dataset == "dota2") continue;
      before.emplace(scheme,
                     bench::RunScheme(scheme, clean, dataset, kSeed, budget,
                                      &clean_utility));
    }

    for (size_t a = 0; a < attacks.size(); ++a) {
      bench::PreparedExperiment attacked(
          ApplyAttack(clean.federation, attacks[a], victims, kSeed + 91),
          clean.test);
      RetrainUtility attacked_utility(
          &attacked.federation, &attacked.test,
          bench::MakeUtilityConfig(dataset, kSeed));
      for (const std::string& scheme : bench::SchemeNames()) {
        const bool heavy =
            scheme == "ShapleyValue" || scheme == "LeastCore";
        if (heavy && dataset == "dota2") {
          cells[{static_cast<int>(a), scheme}].push_back("         skip");
          continue;
        }
        const Result<ContributionResult>& pre = before.at(scheme);
        const Result<ContributionResult> post =
            bench::RunScheme(scheme, attacked, dataset, kSeed, budget,
                             &attacked_utility);
        if (!pre.ok() || !post.ok()) {
          cells[{static_cast<int>(a), scheme}].push_back("          ERR");
          continue;
        }
        double avg_change = 0.0;
        for (int v : victims) {
          avg_change += RelativeChange(pre.value().scores[v],
                                       post.value().scores[v]);
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %+12.3f",
                      avg_change / victims.size());
        cells[{static_cast<int>(a), scheme}].push_back(buf);
      }
    }
  }

  for (size_t a = 0; a < attacks.size(); ++a) {
    std::printf("\n### Adverse behavior: %s ###\n", AttackName(attacks[a]));
    std::printf("%-13s", "scheme");
    for (const std::string& dataset : bench::Datasets()) {
      std::printf(" %12s", dataset.c_str());
    }
    std::printf("\n");
    bench::PrintRule();
    for (const std::string& scheme : bench::SchemeNames()) {
      std::printf("%-13s", scheme.c_str());
      for (const std::string& cell :
           cells[{static_cast<int>(a), scheme}]) {
        std::printf("%s", cell.c_str());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nReading guide: replication row should be ~0 for CTFL-macro and\n"
      "Individual; low-quality/flip rows should be moderately negative and\n"
      "stable for CTFL-micro and Individual, erratic for the rest.\n");
  return 0;
}
