// Reproduces Table IV: the benchmark datasets and their characteristics.
//
// tic-tac-toe is reconstructed exactly (all 958 legal endgames); the other
// three are schema/marginal/accuracy-band-matched synthetic equivalents
// (see DESIGN.md §5 for the substitution rationale).

#include <cstdio>

#include "common.h"
#include "ctfl/data/stats.h"

int main() {
  using namespace ctfl;
  bench::PrintTitle("Table IV: Datasets");
  std::printf("%-12s %10s %10s  %-10s\n", "Dataset", "#-Instances",
              "#-Features", "Feature Type");
  bench::PrintRule();
  for (const std::string& name : bench::Datasets()) {
    const size_t paper_size = BenchmarkDefaultSize(name);
    const Result<Dataset> dataset = MakeBenchmark(name, paper_size, 42);
    if (!dataset.ok()) {
      std::printf("%-12s  ERROR: %s\n", name.c_str(),
                  dataset.status().ToString().c_str());
      continue;
    }
    const DatasetStats stats = ComputeStats(name, *dataset);
    std::printf("%s\n", FormatStatsRow(stats).c_str());
  }
  bench::PrintRule();
  std::printf(
      "Paper reference: tic-tac-toe 958/9/discrete, adult 32561/14/mixed,\n"
      "                 bank 45211/16/mixed, dota2 102944/116/discrete.\n");
  return 0;
}
