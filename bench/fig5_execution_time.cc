// Reproduces Fig. 5: execution time of each contribution-estimation
// scheme on each dataset. The headline result is relative: CTFL needs one
// model training + one traced inference pass, while ShapleyValue /
// LeastCore retrain Theta(n^2 log n) coalitions — a 2-3 order-of-magnitude
// gap that is architecture-independent.

#include <cstdio>

#include "common.h"

int main() {
  using namespace ctfl;
  constexpr int kParticipants = 8;
  constexpr uint64_t kSeed = 11;
  const double budget = 1.0;  // the paper's Theta(n^2 log n) budget
  bench::InitTelemetryFromEnv();

  // Per-dataset CTFL run telemetry (captured from the CTFL-micro runs):
  // the phase breakdown behind the headline wall-clock numbers.
  std::vector<std::shared_ptr<const CtflReport>> ctfl_reports;

  bench::PrintTitle("Fig. 5: Execution Time (seconds; coalition trainings)");
  std::printf("%-13s", "scheme");
  for (const std::string& dataset : bench::Datasets()) {
    std::printf(" %21s", dataset.c_str());
  }
  std::printf("\n");
  bench::PrintRule();

  std::vector<std::vector<double>> seconds(bench::SchemeNames().size());
  for (size_t s = 0; s < bench::SchemeNames().size(); ++s) {
    const std::string& scheme = bench::SchemeNames()[s];
    std::printf("%-13s", scheme.c_str());
    std::fflush(stdout);
    for (const std::string& dataset : bench::Datasets()) {
      const bool heavy = scheme == "ShapleyValue" || scheme == "LeastCore";
      if (heavy && dataset == "dota2") {
        std::printf(" %21s", "skipped (paper too)");
        seconds[s].push_back(-1.0);
        continue;
      }
      const bench::PreparedExperiment experiment =
          bench::Prepare(dataset, kParticipants, /*skew_label=*/true, kSeed);
      std::shared_ptr<const CtflReport> ctfl_report;
      const Result<ContributionResult> result = bench::RunScheme(
          scheme, experiment, dataset, kSeed, budget,
          /*shared_utility=*/nullptr,
          scheme == "CTFL-micro" ? &ctfl_report : nullptr);
      if (ctfl_report != nullptr) ctfl_reports.push_back(ctfl_report);
      if (!result.ok()) {
        std::printf(" %21s", "ERROR");
        seconds[s].push_back(-1.0);
        continue;
      }
      seconds[s].push_back(result->seconds);
      std::printf(" %12.2fs (%4d tr)", result->seconds,
                  result->coalitions_evaluated);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  bench::PrintRule();
  // Relative speed-up of CTFL-micro vs the coalition-based schemes.
  std::printf("\nCTFL-micro speed-up factors:\n");
  for (size_t d = 0; d < bench::Datasets().size(); ++d) {
    const double ctfl = seconds[0][d];
    std::printf("  %-12s", bench::Datasets()[d].c_str());
    for (size_t s = 2; s < bench::SchemeNames().size(); ++s) {
      if (seconds[s][d] <= 0.0 || ctfl <= 0.0) {
        std::printf("  vs %s: n/a", bench::SchemeNames()[s].c_str());
      } else {
        std::printf("  vs %s: %.0fx", bench::SchemeNames()[s].c_str(),
                    seconds[s][d] / ctfl);
      }
    }
    std::printf("\n");
  }
  // Where CTFL's single pass spends its time, per dataset (train vs trace
  // vs allocate; grafting steps, tau_w hit counts) — the cost accounting
  // behind the Fig. 5 comparison.
  for (size_t d = 0;
       d < ctfl_reports.size() && d < bench::Datasets().size(); ++d) {
    bench::PrintRunTelemetry("CTFL-micro " + bench::Datasets()[d],
                             ctfl_reports[d]->telemetry);
  }

  std::printf(
      "\nExpected shape (paper): CTFL ~ Individual; ShapleyValue and\n"
      "LeastCore 2-3 orders of magnitude slower (hours-scale at paper\n"
      "sizes), infeasible on dota2.\n");
  bench::FlushTelemetry();
  return 0;
}
